"""Two-speed execution through the public surfaces:
``Simulator.run(fast_forward=...)`` and ``SweepRunner.sweep(...,
fast_forward=...)``.

The contract under test: the *measured window* of a fast-forwarded run
is byte-identical no matter how the machine reached the window — cold
accurate warmup, functional warmup, or a restored checkpoint — and the
sweep engine builds one warmed checkpoint per (image, arch_key) family
and reuses it everywhere, including across processes and from disk.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import ArchitectureConfig
from repro.core.sampling import SamplingPlan
from repro.core.sim import Simulator
from repro.core.sweep import ResultCache, SweepRunner
from repro.obs.collect import simulator_snapshot
from repro.toolchain.driver import compile_c_program

pytestmark = pytest.mark.slow

#: Big enough that WARMUP leaves a substantial measured window (the
#: loop retires ~43k instructions; warmup covers only the first 3k).
WORKLOAD = """
unsigned data[256];
int main(void) {
    unsigned i, sum = 0;
    for (i = 0; i < 1200; i++) { sum += data[i & 255] + i; data[i & 255] = sum; }
    return (int)sum;
}
"""
WARMUP = 3_000


@pytest.fixture(scope="module")
def image():
    return compile_c_program(WORKLOAD)


def _canonical(report) -> str:
    """The identity-relevant fields of a SimReport (fastpath provenance
    deliberately excluded — it describes *how*, not *what*)."""
    return json.dumps({
        "cycles": report.cycles, "instructions": report.instructions,
        "mix": report.instruction_mix, "dcache": report.dcache,
        "icache": report.icache, "result_word": report.result_word,
        "uart": report.uart_output.hex(), "obs": report.obs,
    }, sort_keys=True, default=str)


class TestSimulatorFastForward:
    def test_warmup_engine_does_not_change_the_window(self, image):
        fast = Simulator(capture_memory_trace=False).run(
            image, fast_forward=WARMUP, warmup_engine="fast")
        accurate = Simulator(capture_memory_trace=False).run(
            image, fast_forward=WARMUP, warmup_engine="accurate")
        translated = Simulator(capture_memory_trace=False).run(
            image, fast_forward=WARMUP, warmup_engine="translated")
        assert _canonical(fast) == _canonical(accurate)
        assert _canonical(translated) == _canonical(accurate)
        # the window must be substantial, or this test proves nothing
        assert fast.instructions > 10_000
        assert fast.fastpath["warmup_engine"] == "fast"
        assert accurate.fastpath["warmup_engine"] == "accurate"
        assert translated.fastpath["warmup_engine"] == "translated"

    def test_translated_checkpoint_matches_functional(self, image):
        """checkpoint() now warms on the translated engine by default;
        the captured state must be byte-identical to a functional warmup
        of the same depth, and the block cache must actually have run."""
        warm_t = Simulator(capture_memory_trace=False)
        state_t = warm_t.checkpoint(image, WARMUP)
        warm_f = Simulator(capture_memory_trace=False)
        state_f = warm_f.checkpoint(image, WARMUP, warmup_engine="fast")
        assert state_t == state_f
        assert warm_t.fastpath_blocks_translated > 0
        assert warm_t.fastpath_blocks_executed > 0
        assert warm_f.fastpath_blocks_translated == 0

    def test_checkpoint_restore_reproduces_the_window(self, image):
        direct = Simulator(capture_memory_trace=False).run(
            image, fast_forward=WARMUP)
        warm = Simulator(capture_memory_trace=False)
        state = warm.checkpoint(image, WARMUP)
        resumed = Simulator(capture_memory_trace=False).run(
            from_checkpoint=state)
        assert _canonical(resumed) == _canonical(direct)
        assert resumed.fastpath["warmup_engine"] == "checkpoint"

    def test_fast_forward_past_program_end(self, image):
        """A warmup budget larger than the whole program parks at the
        polling loop; the measured window is then empty but well-formed."""
        report = Simulator(capture_memory_trace=False).run(
            image, fast_forward=10_000_000)
        assert report.instructions == 0
        assert report.fastpath["warmup_instructions"] > 0

    def test_fast_forward_zero_is_the_seed_behavior(self, image):
        cold = Simulator(capture_memory_trace=False).run(image)
        explicit = Simulator(capture_memory_trace=False).run(
            image, fast_forward=0)
        assert _canonical(cold) == _canonical(explicit)
        assert cold.fastpath == {} and explicit.fastpath == {}

    def test_negative_fast_forward_rejected(self, image):
        with pytest.raises(ValueError):
            Simulator(capture_memory_trace=False).run(
                image, fast_forward=-1)

    def test_bad_warmup_engine_rejected(self, image):
        with pytest.raises(ValueError):
            Simulator(capture_memory_trace=False).run(
                image, fast_forward=10, warmup_engine="quantum")

    def test_obs_exposes_fastpath_counters(self, image):
        sim = Simulator(capture_memory_trace=False)
        report = sim.run(image, fast_forward=WARMUP)
        # window deltas exist in the report's schema...
        assert "fastpath.instructions" in report.obs["counters"]
        assert "fastpath.handoffs" in report.obs["counters"]
        # ...and the simulator totals show the warmup actually ran fast
        totals = simulator_snapshot(sim)["counters"]
        assert totals["fastpath.instructions"] > 0
        assert totals["fastpath.handoffs"] == 1
        assert totals["fastpath.checkpoint_captures"] == 0

    def test_obs_exposes_block_cache_counters(self, image):
        sim = Simulator(capture_memory_trace=False)
        sim.run(image, fast_forward=WARMUP, warmup_engine="translated")
        totals = simulator_snapshot(sim)["counters"]
        assert totals["fastpath.blocks_translated"] > 0
        assert totals["fastpath.blocks_executed"] > 0
        assert totals["fastpath.blocks_invalidated"] >= 0


class TestSweepFastForward:
    CONFIGS = [ArchitectureConfig().with_dcache_size(size)
               for size in (1024, 4096)]

    def test_one_checkpoint_serves_the_arch_family(self, image, tmp_path):
        cache = ResultCache(tmp_path)
        outcome = SweepRunner(cache=cache).sweep(
            self.CONFIGS, image, fast_forward=WARMUP)
        # both configs share nwindows/extensions -> one checkpoint
        assert outcome.stats.checkpoints_built == 1
        assert outcome.stats.simulated == 2
        assert cache.stats.checkpoint_stores == 1

    def test_rerun_is_entirely_cached(self, image, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(cache=cache)
        runner.sweep(self.CONFIGS, image, fast_forward=WARMUP)
        again = runner.sweep(self.CONFIGS, image, fast_forward=WARMUP)
        assert again.stats.simulated == 0
        assert again.stats.checkpoints_built == 0
        assert again.stats.cache_hits == 2

    def test_checkpoint_survives_on_disk(self, image, tmp_path):
        first = SweepRunner(cache=ResultCache(tmp_path)).sweep(
            [self.CONFIGS[0]], image, fast_forward=WARMUP)
        # fresh runner+cache, results wiped from memory: the point is
        # served from disk; force a re-simulation of a sibling config to
        # prove the *checkpoint* comes back from disk too.
        cache = ResultCache(tmp_path)
        second = SweepRunner(cache=cache).sweep(
            self.CONFIGS, image, fast_forward=WARMUP)
        assert second.stats.checkpoints_built == 0
        assert second.stats.checkpoint_hits == 1
        assert second.stats.simulated == 1  # only the sibling config
        assert (second.points[0].canonical_json()
                == first.points[0].canonical_json())

    def test_serial_and_parallel_agree(self, image):
        serial = SweepRunner(workers=0).sweep(
            self.CONFIGS, image, fast_forward=WARMUP)
        parallel = SweepRunner(workers=2).sweep(
            self.CONFIGS, image, fast_forward=WARMUP)
        for a, b in zip(serial.points, parallel.points):
            assert a.canonical_json() == b.canonical_json()

    def test_windowed_and_whole_program_never_collide(self, image,
                                                      tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(cache=cache)
        windowed = runner.sweep([self.CONFIGS[0]], image,
                                fast_forward=WARMUP)
        whole = runner.sweep([self.CONFIGS[0]], image)
        assert whole.stats.simulated == 1  # not served from the ff entry
        assert (windowed.points[0].fingerprint
                != whole.points[0].fingerprint)
        assert windowed.points[0].fingerprint.endswith(f"-ff{WARMUP}")

    def test_windowed_points_match_direct_runs(self, image):
        outcome = SweepRunner().sweep(self.CONFIGS, image,
                                      fast_forward=WARMUP)
        for config, point in zip(self.CONFIGS, outcome.points):
            direct = Simulator(config, capture_memory_trace=False).run(
                image, fast_forward=WARMUP)
            assert point.cycles == direct.cycles
            assert point.instructions == direct.instructions
            assert point.uart_hex == direct.uart_output.hex()

    def test_negative_fast_forward_rejected(self, image):
        with pytest.raises(ValueError):
            SweepRunner().sweep(self.CONFIGS, image, fast_forward=-5)


class TestWarmupEngineDefault:
    """``run`` historically defaulted to ``"fast"`` while ``checkpoint``
    defaulted to ``"translated"`` — the same nominal warmup took
    different engines depending on the entry point.  Both now default to
    ``"translated"``, and the regression is pinned at both the signature
    and the behaviour level."""

    def test_defaults_are_unified(self):
        import inspect

        run_default = inspect.signature(
            Simulator.run).parameters["warmup_engine"].default
        checkpoint_default = inspect.signature(
            Simulator.checkpoint).parameters["warmup_engine"].default
        assert run_default == checkpoint_default == "translated"

    def test_default_run_lands_on_the_checkpoint_state(self, image):
        """run(fast_forward=N) with the default engine must produce the
        exact window that resuming checkpoint(N)'s state does."""
        defaulted = Simulator(capture_memory_trace=False).run(
            image, fast_forward=WARMUP)
        warm = Simulator(capture_memory_trace=False)
        state = warm.checkpoint(image, WARMUP)
        resumed = Simulator(capture_memory_trace=False).run(
            from_checkpoint=state)
        assert _canonical(defaulted) == _canonical(resumed)
        assert defaulted.fastpath["warmup_engine"] == "translated"


class TestSweepSampling:
    """Satellite determinism contract: identical (image, plan, seed)
    must yield byte-identical sampled records serially, in parallel
    workers, and on a ResultCache re-run."""

    CONFIGS = [ArchitectureConfig().with_dcache_size(size)
               for size in (1024, 4096)]
    PLAN = SamplingPlan(n_windows=3, window_length=400, ramp_length=256,
                        seed=5)

    def test_serial_parallel_and_rerun_are_byte_identical(
            self, image, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(cache=cache)
        serial = runner.sweep(self.CONFIGS, image, sampling=self.PLAN)
        parallel = SweepRunner(workers=2).sweep(
            self.CONFIGS, image, sampling=self.PLAN)
        rerun = SweepRunner(cache=ResultCache(tmp_path)).sweep(
            self.CONFIGS, image, sampling=self.PLAN)
        assert rerun.stats.simulated == 0  # served entirely from disk
        for a, b, c in zip(serial.points, parallel.points, rerun.points):
            assert a.canonical_json() == b.canonical_json()
            assert a.canonical_json() == c.canonical_json()
            assert a.sampled is not None
            assert a.sampled == b.sampled == c.sampled

    def test_sampled_points_match_direct_runs(self, image):
        outcome = SweepRunner().sweep([self.CONFIGS[0]], image,
                                      sampling=self.PLAN)
        point = outcome.points[0]
        direct = Simulator(self.CONFIGS[0],
                           capture_memory_trace=False).run_sampled(
            image, self.PLAN)
        assert point.sampled["estimated_cycles"] == direct.estimated_cycles
        assert point.cycles == int(round(direct.estimated_cycles))
        assert point.instructions == direct.total_instructions
        assert point.fingerprint.endswith(
            f"-{self.PLAN.fingerprint_token()}")
        assert "sampling.runs" in point.obs["counters"]

    def test_sampling_excludes_fast_forward(self, image):
        with pytest.raises(ValueError, match="mutually exclusive"):
            SweepRunner().sweep(self.CONFIGS, image,
                                fast_forward=WARMUP, sampling=self.PLAN)

    def test_full_detail_and_sampled_never_collide(self, image, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(cache=cache)
        sampled = runner.sweep([self.CONFIGS[0]], image, sampling=self.PLAN)
        whole = runner.sweep([self.CONFIGS[0]], image)
        assert whole.stats.simulated == 1
        assert (sampled.points[0].fingerprint
                != whole.points[0].fingerprint)
        assert whole.points[0].sampled is None


class TestCheckpointResumedWindows:
    """A window measured from a restored mid-program ArchState must be
    byte-identical to the same window reached by stepping straight
    through on the accurate engine — the checkpoint carries everything
    architectural, and the canonical handoff state covers the rest."""

    def test_resumed_equals_straight_through(self, image):
        from repro.core.sampling import (SampledRunner, head_spec,
                                         measure_window, place_windows)

        plan = SamplingPlan(n_windows=2, window_length=400,
                            ramp_length=256, seed=2)
        runner = SampledRunner()
        run = runner.run(image, plan)
        assert run.windows, "plan must place at least one window"

        survey = runner._survey(image, 50_000_000)
        head = head_spec(survey["steps"], plan)
        _, specs = place_windows(survey["steps"], plan, start=head.end)

        sim = Simulator(capture_memory_trace=False, obs=False)
        cpu = sim._boot_and_dispatch(image, "accurate")
        poll = sim.rom_info.poll_address
        position = 0
        for spec, resumed in zip(specs, run.windows):
            budget = spec.ramp_start - position
            steps = 0
            while steps < budget and cpu.pc != poll:
                cpu.step()
                steps += 1
            position = spec.ramp_start
            sim._normalize_window_start()
            straight = measure_window(sim, spec, poll)
            position = spec.end
            assert straight == resumed
