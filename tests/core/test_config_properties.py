"""Property tests for :meth:`ArchitectureConfig.fingerprint`.

The fingerprint is the on-disk sweep cache's index: two runs that hash a
config differently silently re-simulate (wasting the cache), and two
*different* configs that hash identically silently serve wrong results.
Hypothesis drives both directions over the whole configuration space.
"""

import dataclasses
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import REPLACEMENT_POLICIES, CacheGeometry
from repro.core import ArchitectureConfig, ExtensionSpec
from repro.core.config import (
    DIVIDER_CYCLES,
    MULTIPLIER_CYCLES,
    PIPELINE_DEPTHS,
)


def geometries():
    """Valid CacheGeometry values: power-of-two shape with
    ``line_size * ways`` dividing ``size``."""
    return st.builds(
        lambda line_shift, ways_shift, sets_shift, replacement:
            CacheGeometry(
                size=(1 << line_shift) * (1 << ways_shift) * (1 << sets_shift),
                line_size=1 << line_shift,
                ways=1 << ways_shift,
                replacement=replacement),
        line_shift=st.integers(3, 6),    # 8..64-byte lines
        ways_shift=st.integers(0, 2),    # direct-mapped..4-way
        sets_shift=st.integers(1, 6),    # 2..64 sets
        replacement=st.sampled_from(REPLACEMENT_POLICIES),
    )


def extensions():
    specs = st.builds(
        ExtensionSpec,
        name=st.sampled_from(["mac", "fir", "crc", "popc"]),
        opf=st.integers(0x10, 0x1F),
        slice_cost=st.integers(50, 2000),
        cycles=st.integers(1, 8),
    )
    return st.lists(specs, max_size=3,
                    unique_by=(lambda e: e.name, lambda e: e.opf)
                    ).map(tuple)


def configs():
    return st.builds(
        ArchitectureConfig,
        icache=geometries(),
        dcache=geometries(),
        nwindows=st.sampled_from([2, 4, 8, 16, 32]),
        multiplier=st.sampled_from(sorted(MULTIPLIER_CYCLES)),
        divider=st.sampled_from(sorted(DIVIDER_CYCLES)),
        adapter_read_burst=st.sampled_from([1, 2, 4, 8]),
        extensions=extensions(),
        load_use_interlock=st.booleans(),
        prefetch=st.sampled_from(["none", "nextline", "stride"]),
        pipeline_depth=st.sampled_from(sorted(PIPELINE_DEPTHS)),
    )


class TestFingerprintProperties:
    @given(config=configs())
    def test_equal_configs_equal_fingerprints(self, config):
        """Rebuilding the same point from its field values must land on
        the same cache entry — across objects, not just object identity."""
        clone = ArchitectureConfig(**{
            f.name: getattr(config, f.name)
            for f in dataclasses.fields(config)})
        assert clone == config
        assert clone.fingerprint() == config.fingerprint()
        assert len(config.fingerprint()) == 16

    @settings(max_examples=50)
    @given(config=configs(), other=configs())
    def test_distinct_configs_distinct_fingerprints(self, config, other):
        if config == other:
            assert config.fingerprint() == other.fingerprint()
        else:
            assert config.fingerprint() != other.fingerprint()

    @given(config=configs(), data=st.data())
    def test_single_field_perturbation_changes_fingerprint(self, config,
                                                           data):
        """Every field is identity-relevant — including the extension
        cost fields that key() ignores."""
        field = data.draw(st.sampled_from([
            "nwindows", "multiplier", "divider", "adapter_read_burst",
            "load_use_interlock", "prefetch", "pipeline_depth",
            "extensions"]), label="field")
        current = getattr(config, field)
        if field == "nwindows":
            value = data.draw(st.sampled_from(
                [n for n in (2, 4, 8, 16, 32) if n != current]))
        elif field == "multiplier":
            value = data.draw(st.sampled_from(
                sorted(set(MULTIPLIER_CYCLES) - {current})))
        elif field == "divider":
            value = data.draw(st.sampled_from(
                sorted(set(DIVIDER_CYCLES) - {current})))
        elif field == "adapter_read_burst":
            value = data.draw(st.sampled_from(
                [n for n in (1, 2, 4, 8) if n != current]))
        elif field == "load_use_interlock":
            value = not current
        elif field == "prefetch":
            value = data.draw(st.sampled_from(
                [p for p in ("none", "nextline", "stride") if p != current]))
        elif field == "pipeline_depth":
            value = data.draw(st.sampled_from(
                [d for d in sorted(PIPELINE_DEPTHS) if d != current]))
        else:  # extensions: perturb a cost field key() cannot see
            ext = ExtensionSpec("pert", opf=0x3F, slice_cost=1, cycles=1)
            if any(e.opf == 0x3F for e in current):
                ext = dataclasses.replace(ext, cycles=9)
                value = tuple(dataclasses.replace(e, cycles=9)
                              if e.opf == 0x3F else e for e in current)
            else:
                value = current + (ext,)
        perturbed = dataclasses.replace(config, **{field: value})
        assert perturbed.fingerprint() != config.fingerprint()

    @given(config=configs())
    def test_fingerprint_survives_asdict_round_trip(self, config):
        """The canonical dict dump — what the fingerprint hashes — must
        rebuild into a config with the same fingerprint (the restart
        survival property of the on-disk cache)."""
        dumped = json.loads(json.dumps(dataclasses.asdict(config)))
        rebuilt = ArchitectureConfig(
            icache=CacheGeometry(**dumped["icache"]),
            dcache=CacheGeometry(**dumped["dcache"]),
            nwindows=dumped["nwindows"],
            multiplier=dumped["multiplier"],
            divider=dumped["divider"],
            adapter_read_burst=dumped["adapter_read_burst"],
            extensions=tuple(ExtensionSpec(**e)
                             for e in dumped["extensions"]),
            load_use_interlock=dumped["load_use_interlock"],
            prefetch=dumped["prefetch"],
            pipeline_depth=dumped["pipeline_depth"],
        )
        assert rebuilt == config
        assert rebuilt.fingerprint() == config.fingerprint()

    @given(config=configs())
    def test_fingerprint_is_stable_across_calls(self, config):
        assert config.fingerprint() == config.fingerprint()
