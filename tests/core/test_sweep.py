"""Sweep engine tests: determinism across executors, the two-layer
result cache, selection helpers, and config/image identity."""

import dataclasses
import json

import pytest

from repro.core import (
    ArchitectureConfig,
    ConfigurationSpace,
    ResultCache,
    SweepRunner,
    best_point,
    image_digest,
    pareto_front,
)
from repro.toolchain.driver import compile_c_program

# A miniature Figure-7-shaped kernel: strided array access, small enough
# that one simulation is milliseconds, with the same knee behaviour.
KERNEL = """
unsigned count[1024];

int main(void) {
    unsigned i;
    volatile unsigned x;
    for (i = 0; i < 2000; i = i + 32) {
        x = count[i % 1024];
    }
    return 7;
}
"""


@pytest.fixture(scope="module")
def image():
    return compile_c_program(KERNEL)


@pytest.fixture(scope="module")
def space():
    return ConfigurationSpace.paper_cache_sweep()


@pytest.fixture(scope="module")
def serial_outcome(image, space):
    return SweepRunner().sweep(space, image)


class TestIdentity:
    def test_fingerprint_stable_across_equal_configs(self):
        a = ArchitectureConfig().with_dcache_size(2048)
        b = ArchitectureConfig().with_dcache_size(2048)
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_distinguishes_every_point(self, space):
        fingerprints = [config.fingerprint() for config in space]
        assert len(set(fingerprints)) == space.size

    def test_fingerprint_sees_fields_key_ignores(self):
        """key() names extensions only by name; the fingerprint must
        also see their cost fields."""
        from repro.core import ExtensionSpec

        cheap = ArchitectureConfig(extensions=(
            ExtensionSpec("mac", opf=0x10, cycles=1),))
        slow = ArchitectureConfig(extensions=(
            ExtensionSpec("mac", opf=0x10, cycles=4),))
        assert cheap.key() == slow.key()
        assert cheap.fingerprint() != slow.fingerprint()

    def test_image_digest_tracks_content(self, image):
        assert image_digest(image) == image_digest(image)
        other = compile_c_program(KERNEL.replace("return 7", "return 8"))
        assert image_digest(other) != image_digest(image)


class TestDeterminism:
    def test_parallel_matches_serial_byte_for_byte(self, image, space,
                                                   serial_outcome):
        """The satellite contract: a parallel sweep over the paper's
        cache sweep returns exactly the same SimReport fields (cycles,
        CPI, cache stats, ...) as the serial sweep, in the same order."""
        parallel = SweepRunner(workers=2).sweep(space, image)
        assert [p.canonical_json() for p in parallel.points] \
            == [p.canonical_json() for p in serial_outcome.points]
        assert [p.config for p in parallel.points] == list(space)

    def test_points_carry_simreport_fields(self, serial_outcome):
        for point in serial_outcome.points:
            assert point.cycles > 0
            assert point.instructions > 0
            assert point.cpi == point.cycles / point.instructions
            assert point.dcache["read_misses"] >= 0
            assert point.icache["read_hits"] > 0
            assert point.result_word == 7
            assert point.source == "simulated"

    def test_paper_knee_shape(self, serial_outcome):
        cycles = {p.config.dcache.size: p.cycles
                  for p in serial_outcome.points}
        assert cycles[1024] == cycles[2048]
        assert cycles[4096] < cycles[1024]
        assert cycles[4096] == cycles[8192] == cycles[16384]


class TestObsSnapshots:
    """Per-point telemetry: present, meaningful, and byte-deterministic
    across executors — the persisted-snapshot acceptance contract."""

    def test_points_carry_obs_series(self, serial_outcome):
        for point in serial_outcome.points:
            counters = point.obs["counters"]
            assert counters["pipeline.interlock_stalls"] >= 0
            assert counters["pipeline.cycles"] == point.cycles
            assert counters["pipeline.instructions"] == point.instructions
            assert counters["cache.read_misses{cache=dcache}"] \
                == point.dcache["read_misses"]
            # The Sim box has no network; the series still exists (at
            # zero) so remote-run snapshots diff against local ones.
            assert counters["transport.dropped_corrupt"] == 0
            # One histogram observation per demand read miss.
            assert point.obs["histograms"][
                "cache.miss_cycles{cache=dcache}"]["count"] \
                == point.dcache["read_misses"]
            occupancy = point.obs["gauges"]["pipeline.occupancy{stage=EX}"]
            assert 0 < occupancy <= 1

    def test_serial_and_parallel_persist_identical_snapshots(
            self, image, tmp_path):
        """Differential satellite: sweep 4 D-cache sizes serially and
        with 2 workers into two separate disk caches; every persisted
        per-point record — obs snapshot included — must be
        byte-identical."""
        configs = [ArchitectureConfig().with_dcache_size(size)
                   for size in (1024, 2048, 4096, 8192)]
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        SweepRunner(cache=ResultCache(serial_dir)).sweep(configs, image)
        SweepRunner(workers=2, cache=ResultCache(parallel_dir)).sweep(
            configs, image)
        digest = image_digest(image)
        serial_files = sorted((serial_dir / digest).glob("*.json"))
        assert len(serial_files) == 4
        for serial_file in serial_files:
            parallel_file = parallel_dir / digest / serial_file.name
            assert serial_file.read_bytes() == parallel_file.read_bytes()
            record = json.loads(serial_file.read_text())
            assert record["obs"]["counters"]["pipeline.cycles"] > 0

    def test_obs_survives_cache_round_trip(self, image, tmp_path):
        config = ArchitectureConfig()
        SweepRunner(cache=ResultCache(tmp_path)).sweep([config], image)
        outcome = SweepRunner(cache=ResultCache(tmp_path)).sweep(
            [config], image)
        point = outcome.points[0]
        assert point.source == "disk"
        assert point.obs["counters"]["pipeline.cycles"] == point.cycles

    def test_sweep_runner_host_registry(self, image):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        runner = SweepRunner(obs=registry)
        configs = [ArchitectureConfig(),
                   ArchitectureConfig().with_dcache_size(2048)]
        runner.sweep(configs, image)
        snap = registry.snapshot()
        assert snap["counters"]["sweep.points"] == 2
        assert snap["counters"]["sweep.simulated"] == 2
        assert snap["histograms"]["sweep.point_wall_ms"]["count"] == 2
        assert snap["gauges"]["sweep.workers"] == 0

    def test_obs_disabled_simulator_reports_empty(self, image):
        from repro.core.sim import Simulator

        report = Simulator(obs=False).run(image)
        assert report.obs == {}
        assert report.cycles > 0


class TestResultCache:
    def test_second_run_is_all_memory_hits(self, image, space):
        cache = ResultCache()
        runner = SweepRunner(cache=cache)
        first = runner.sweep(space, image)
        second = runner.sweep(space, image)
        assert first.stats.simulated == space.size
        assert second.stats.simulated == 0
        assert second.stats.memory_hits == space.size
        assert cache.stats.misses == space.size
        assert cache.stats.memory_hits == space.size
        assert [p.canonical_json() for p in first.points] \
            == [p.canonical_json() for p in second.points]
        assert all(p.source == "memory" for p in second.points)

    def test_disk_layer_survives_new_process_state(self, image, space,
                                                   tmp_path):
        first = SweepRunner(cache=ResultCache(tmp_path)).sweep(space, image)
        # A brand-new cache object sees only the on-disk layer — the
        # "restart the tool, keep the results" economics.
        cache = ResultCache(tmp_path)
        second = SweepRunner(cache=cache).sweep(space, image)
        assert second.stats.simulated == 0
        assert second.stats.disk_hits == space.size
        assert all(p.source == "disk" for p in second.points)
        assert [p.canonical_json() for p in first.points] \
            == [p.canonical_json() for p in second.points]

    def test_disk_layout_is_digest_then_fingerprint(self, image, space,
                                                    tmp_path):
        SweepRunner(cache=ResultCache(tmp_path)).sweep(space, image)
        digest_dir = tmp_path / image_digest(image)
        assert digest_dir.is_dir()
        files = sorted(digest_dir.glob("*.json"))
        assert len(files) == space.size
        record = json.loads(files[0].read_text())
        assert record["schema"] == 5
        assert record["cycles"] > 0

    def test_corrupt_disk_record_is_a_miss(self, image, tmp_path):
        config = ArchitectureConfig()
        cache = ResultCache(tmp_path)
        SweepRunner(cache=cache).sweep([config], image)
        path = tmp_path / image_digest(image) / f"{config.fingerprint()}.json"
        path.write_text("{not json")
        fresh = ResultCache(tmp_path)
        outcome = SweepRunner(cache=fresh).sweep([config], image)
        assert outcome.stats.simulated == 1
        assert fresh.stats.misses == 1

    def test_cache_distinguishes_images(self, image, tmp_path):
        other = compile_c_program(KERNEL.replace("return 7", "return 9"))
        cache = ResultCache(tmp_path)
        config = ArchitectureConfig()
        SweepRunner(cache=cache).sweep([config], image)
        outcome = SweepRunner(cache=cache).sweep([config], other)
        assert outcome.stats.simulated == 1
        assert outcome.points[0].result_word == 9


class TestObservability:
    def test_progress_callback_order_and_counts(self, image, space):
        seen = []
        runner = SweepRunner(
            workers=2,
            progress=lambda done, total, point: seen.append(
                (done, total, point.config.dcache.size)))
        runner.sweep(space, image)
        sizes = [config.dcache.size for config in space]
        assert seen == [(i + 1, space.size, size)
                        for i, size in enumerate(sizes)]

    def test_per_point_timing_recorded(self, serial_outcome):
        assert all(p.wall_seconds > 0 for p in serial_outcome.points)
        assert serial_outcome.stats.sim_seconds > 0
        assert serial_outcome.stats.wall_seconds > 0


class TestSelection:
    def test_best_point_by_cycles_and_seconds(self, serial_outcome):
        fastest = serial_outcome.best_point("cycles")
        assert fastest.cycles == min(p.cycles
                                     for p in serial_outcome.points)
        # Ties on cycles break toward the earlier (4 KB) point.
        assert fastest.config.dcache.size == 4096
        by_seconds = best_point(serial_outcome.points, "seconds")
        assert by_seconds.seconds == min(p.seconds
                                         for p in serial_outcome.points)

    def test_pareto_front_cycles_vs_area(self, serial_outcome):
        front = pareto_front(serial_outcome.points)
        # 2/8/16 KB are dominated (same cycles as a smaller cache,
        # more slices); the frontier is the knee and the smallest cache.
        assert {p.config.dcache.size for p in front} == {1024, 4096}
        for point in front:
            for other in serial_outcome.points:
                dominates = (other.cycles <= point.cycles
                             and other.slices <= point.slices
                             and (other.cycles < point.cycles
                                  or other.slices < point.slices))
                assert not dominates

    def test_best_point_empty_raises(self):
        with pytest.raises(ValueError):
            best_point([])


class TestInputs:
    def test_accepts_plain_config_list_and_many_images(self, image):
        other = compile_c_program(KERNEL.replace("return 7", "return 11"))
        configs = [ArchitectureConfig(),
                   ArchitectureConfig().with_dcache_size(2048)]
        outcome = SweepRunner().sweep(configs, [image, other])
        assert len(outcome.points) == 4
        # Image-major deterministic order.
        assert [p.result_word for p in outcome.points] == [7, 7, 11, 11]
        assert [p.index for p in outcome.points] == [0, 1, 2, 3]

    def test_empty_sweep_rejected(self, image):
        with pytest.raises(ValueError):
            SweepRunner().sweep([], image)

    def test_points_are_immutable_records(self, serial_outcome):
        with pytest.raises(dataclasses.FrozenInstanceError):
            serial_outcome.points[0].cycles = 0
