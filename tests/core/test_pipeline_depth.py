"""Pipeline-depth dimension tests (§1: "modifiable pipeline depth")."""

import pytest

from repro.core import ArchitectureConfig, SynthesisModel, simulate
from repro.core.config import PIPELINE_DEPTHS
from repro.toolchain.driver import compile_c_program

BRANCHY = """
int main(void) {
    int count = 0;
    for (int i = 0; i < 2000; i++) {
        if (i % 3 == 0) count++;
        else if (i % 3 == 1) count += 2;
        else count -= 1;
    }
    return count;
}
"""

STRAIGHT = """
int main(void) {
    unsigned a = 1, b = 2, c = 3, d = 4;
    for (int i = 0; i < 500; i++) {
        a = a * 3 + 1; b = b * 5 + 2; c = c * 7 + 3; d = d * 9 + 4;
        a = a ^ b; b = b ^ c; c = c ^ d; d = d ^ a;
        a = a + b; b = b + c; c = c + d; d = d + a;
    }
    return (int)((a + b + c + d) & 0x7FFFFFFF);
}
"""


class TestConfig:
    def test_depths_supported(self):
        for depth in (3, 5, 7):
            ArchitectureConfig(pipeline_depth=depth)
        with pytest.raises(ValueError):
            ArchitectureConfig(pipeline_depth=4)

    def test_key_marks_nonbaseline_depths(self):
        assert "p7" in ArchitectureConfig(pipeline_depth=7).key()
        assert "p5" not in ArchitectureConfig().key()

    def test_timing_mapping(self):
        deep = ArchitectureConfig(pipeline_depth=7).timing()
        assert deep.taken_cti_penalty == 2
        shallow = ArchitectureConfig(pipeline_depth=3).timing()
        assert shallow.taken_cti_penalty == 0
        assert not shallow.load_use_interlock
        baseline = ArchitectureConfig().timing()
        assert baseline.taken_cti_penalty == 0
        assert baseline.load_use_interlock


class TestSynthesis:
    def test_depth_changes_clock_and_area(self):
        model = SynthesisModel()
        u3 = model.estimate(ArchitectureConfig(pipeline_depth=3))
        u5 = model.estimate(ArchitectureConfig(pipeline_depth=5))
        u7 = model.estimate(ArchitectureConfig(pipeline_depth=7))
        assert u3.frequency_mhz < u5.frequency_mhz < u7.frequency_mhz
        assert u3.slices < u5.slices < u7.slices

    def test_baseline_figure10_untouched(self):
        utilization = SynthesisModel().estimate(ArchitectureConfig())
        assert utilization.slices == 7900
        assert utilization.frequency_mhz == 30.0


@pytest.mark.slow
class TestBehaviour:
    @pytest.fixture(scope="class")
    def images(self):
        return (compile_c_program(BRANCHY), compile_c_program(STRAIGHT))

    def test_deep_pipeline_costs_cycles_on_branchy_code(self, images):
        branchy, _ = images
        base = simulate(branchy, ArchitectureConfig(pipeline_depth=5))
        deep = simulate(branchy, ArchitectureConfig(pipeline_depth=7))
        assert deep.cycles > base.cycles
        assert deep.result_word == base.result_word

    def test_depth_crossover_in_model_time(self, images):
        """The liquid-architecture payoff: which depth is *fastest in
        seconds* depends on the application — branchy code favours the
        5-stage, straight-line code favours the 7-stage's faster clock."""
        branchy, straight = images
        model = SynthesisModel()

        def model_seconds(image, depth):
            config = ArchitectureConfig(pipeline_depth=depth)
            report = simulate(image, config)
            mhz = model.estimate(config).frequency_mhz
            return report.cycles / (mhz * 1e6)

        branchy_5 = model_seconds(branchy, 5)
        branchy_7 = model_seconds(branchy, 7)
        straight_5 = model_seconds(straight, 5)
        straight_7 = model_seconds(straight, 7)
        # Straight-line code: the clock win dominates.
        assert straight_7 < straight_5
        # The deep pipeline's advantage shrinks (or inverts) on branchy
        # code relative to straight-line code.
        assert (branchy_7 / branchy_5) > (straight_7 / straight_5)

    def test_shallow_pipeline_has_no_load_use_bubble(self, images):
        image = compile_c_program("""
int main(void) {
    volatile int x = 5;
    int total = 0;
    for (int i = 0; i < 500; i++) {
        total += x;     /* load immediately used: interlock on 5-stage */
    }
    return total;
}""")
        base = simulate(image, ArchitectureConfig(pipeline_depth=5))
        shallow = simulate(image, ArchitectureConfig(pipeline_depth=3))
        assert shallow.cycles < base.cycles
        assert shallow.result_word == base.result_word

    def test_space_dimension(self):
        from repro.core import ConfigurationSpace

        space = ConfigurationSpace().add_dimension("pipeline_depth",
                                                   [3, 5, 7])
        assert [p.pipeline_depth for p in space] == [3, 5, 7]
