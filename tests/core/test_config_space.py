"""ArchitectureConfig and ConfigurationSpace tests."""

import pytest

from repro.cache.cache import CacheGeometry
from repro.core import ArchitectureConfig, ConfigurationSpace, ExtensionSpec
from repro.core.config import BASELINE, MULTIPLIER_CYCLES


class TestArchitectureConfig:
    def test_baseline_matches_paper_setup(self):
        assert BASELINE.icache.size == 1024
        assert BASELINE.dcache.size == 4096
        assert BASELINE.icache.line_size == 32
        assert BASELINE.dcache.line_size == 32
        assert BASELINE.nwindows == 8

    def test_key_is_canonical_and_distinct(self):
        a = ArchitectureConfig()
        b = a.with_dcache_size(8192)
        assert a.key() != b.key()
        assert a.key() == ArchitectureConfig().key()

    def test_key_reflects_extensions(self):
        ext = ExtensionSpec("mac", 0x02)
        assert "xmac" in ArchitectureConfig().with_extension(ext).key()

    def test_timing_follows_multiplier(self):
        for name, cycles in MULTIPLIER_CYCLES.items():
            config = ArchitectureConfig(multiplier=name)
            assert config.timing().mul_cycles == cycles

    def test_invalid_multiplier_rejected(self):
        with pytest.raises(ValueError):
            ArchitectureConfig(multiplier="warp")

    def test_invalid_nwindows_rejected(self):
        with pytest.raises(ValueError):
            ArchitectureConfig(nwindows=6)  # not a power of two
        with pytest.raises(ValueError):
            ArchitectureConfig(nwindows=64)

    def test_duplicate_extensions_rejected(self):
        ext = ExtensionSpec("x", 1)
        with pytest.raises(ValueError):
            ArchitectureConfig(extensions=(ext, ExtensionSpec("x", 2)))
        with pytest.raises(ValueError):
            ArchitectureConfig(extensions=(ext, ExtensionSpec("y", 1)))

    def test_platform_config_wiring(self):
        config = ArchitectureConfig(multiplier="iterative",
                                    adapter_read_burst=1).with_dcache_size(8192)
        pc = config.platform_config()
        assert pc.dcache.size == 8192
        assert pc.timing.mul_cycles == 35
        assert pc.adapter.read_burst_words == 1

    def test_configs_are_hashable_value_objects(self):
        assert ArchitectureConfig() == ArchitectureConfig()
        assert hash(ArchitectureConfig()) == hash(ArchitectureConfig())


class TestConfigurationSpace:
    def test_paper_sweep_is_the_figure8_axis(self):
        space = ConfigurationSpace.paper_cache_sweep()
        sizes = [config.dcache.size for config in space]
        assert sizes == [1024, 2048, 4096, 8192, 16384]
        for config in space:
            assert config.icache.size == 1024
            assert config.dcache.line_size == 32

    def test_cross_product(self):
        space = ConfigurationSpace()
        space.add_dimension("dcache_size", [1024, 4096])
        space.add_dimension("multiplier", ["iterative", "16x16"])
        points = space.points()
        assert len(points) == space.size == 4
        assert len({p.key() for p in points}) == 4

    def test_unknown_dimension_rejected(self):
        with pytest.raises(KeyError):
            ConfigurationSpace().add_dimension("warp_factor", [1])

    def test_empty_dimension_rejected(self):
        with pytest.raises(ValueError):
            ConfigurationSpace().add_dimension("dcache_size", [])

    def test_line_size_dimension_touches_both_caches(self):
        space = ConfigurationSpace().add_dimension("line_size", [16, 64])
        points = space.points()
        assert points[0].icache.line_size == 16
        assert points[0].dcache.line_size == 16
        assert points[1].dcache.line_size == 64

    def test_nwindows_and_burst_dimensions(self):
        space = ConfigurationSpace()
        space.add_dimension("nwindows", [4, 8])
        space.add_dimension("adapter_read_burst", [1, 4])
        keys = {p.key() for p in space}
        assert len(keys) == 4

    def test_ways_dimension(self):
        space = ConfigurationSpace().add_dimension("dcache_ways", [1, 2, 4])
        ways = [p.dcache.ways for p in space]
        assert ways == [1, 2, 4]
