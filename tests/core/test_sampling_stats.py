"""Statistical validation of sampled simulation against ground truth.

Every registry kernel gets one cycle-accurate full run (the ground
truth) and ten sampled runs with a per-kernel plan at seeds 0..9.  The
95% confidence interval must contain the truth at roughly its nominal
rate: per-kernel floors are frozen from measured coverage (minus one
run of slack), and the aggregate across all kernels must sit within a
3-sigma binomial tolerance of the nominal 95%.

Everything here is deterministic — fixed seeds, integer simulation —
so the coverage counts are exact, not flaky.  The floors still leave
slack so a legitimate estimator change (better placement, longer
ramps) doesn't need this file edited in lockstep; a *collapse* in
coverage fails loudly.

The per-kernel plans are not arbitrary: window lengths and ramp
lengths were grid-searched per kernel.  Two effects dominate the
tuning:

* windows restored from an architectural checkpoint carry a small
  positive memory-stall bias (cache placement/LRU history is not part
  of an ArchState), so the interval must be wide enough — via honest
  between-window CPI variance — to cover it;
* kernels whose tail barely exceeds ``n_windows x window_length``
  degenerate to contiguous tiling, where ramps have no room and the
  estimate is nearly exact.

Unit-level behavior lives in ``test_sampling.py``; this module is the
slow, statistics-bearing half.
"""

from __future__ import annotations

import functools
import math

import pytest

from repro.core.sampling import SampledRunner, SamplingPlan
from repro.core.sim import Simulator
from repro.workloads import get

pytestmark = [pytest.mark.slow, pytest.mark.sampling]

SEEDS = range(10)
CONFIDENCE = 0.95

#: kernel -> ((n_windows, window_length, ramp_length), coverage floor
#: out of ``len(SEEDS)``).  Floors are measured coverage at these
#: exact seeds minus one run of slack.
PLANS: dict[str, tuple[tuple[int, int, int], int]] = {
    "xtea": ((6, 800, 512), 8),
    "des_round": ((4, 1200, 2048), 9),
    "fir": ((8, 400, 1024), 9),
    "crc32": ((8, 400, 256), 9),
    "ipcheck": ((3, 800, 512), 7),
    "qsort_rec": ((8, 400, 256), 7),
    "strsearch": ((8, 400, 256), 8),
}


@functools.lru_cache(maxsize=None)
def _truth(name: str):
    """One cycle-accurate full run: (image, true cycle count)."""
    workload = get(name)
    image = workload.image()
    report = Simulator(capture_memory_trace=False).run(
        image, max_instructions=workload.max_instructions)
    assert workload.check(report.result_word)
    return image, report.cycles


@functools.lru_cache(maxsize=None)
def _coverage(name: str):
    """Ten sampled runs at seeds 0..9: (covered count, runs)."""
    (n, length, ramp), _ = PLANS[name]
    workload = get(name)
    image, truth = _truth(name)
    covered, runs = 0, []
    for seed in SEEDS:
        plan = SamplingPlan(n_windows=n, window_length=length,
                            ramp_length=ramp, seed=seed,
                            confidence=CONFIDENCE)
        run = SampledRunner().run(
            image, plan, max_instructions=workload.max_instructions)
        assert workload.check(run.result_word)
        covered += bool(run.covers(truth))
        runs.append(run)
    return covered, runs


@pytest.mark.parametrize("name", sorted(PLANS))
def test_per_kernel_coverage_holds_its_floor(name):
    (_, _, _), floor = PLANS[name]
    covered, runs = _coverage(name)
    assert covered >= floor, (
        f"{name}: 95% CI covered truth in {covered}/{len(runs)} runs, "
        f"floor is {floor}")


#: Mean absolute relative error ceiling; recursive quicksort's phase
#: behavior is genuinely high-variance (its CI is honest about it —
#: ~11% half-width), so it gets a wider bound.
ERROR_CEILING = {"qsort_rec": 0.10}


@pytest.mark.parametrize("name", sorted(PLANS))
def test_per_kernel_point_estimates_are_close(name):
    """Coverage aside, the point estimate itself must be close: mean
    absolute relative error across seeds under the kernel's ceiling."""
    _, truth = _truth(name)
    _, runs = _coverage(name)
    errors = [abs(run.estimated_cycles - truth) / truth for run in runs]
    assert sum(errors) / len(errors) < ERROR_CEILING.get(name, 0.05)


def test_aggregate_coverage_within_binomial_tolerance():
    """Across every (kernel, seed) pair the CI must cover truth at the
    nominal rate up to 3-sigma binomial slack: with n trials at
    confidence p, covered >= n*p - 3*sqrt(n*p*(1-p))."""
    trials, covered = 0, 0
    for name in PLANS:
        got, runs = _coverage(name)
        covered += got
        trials += len(runs)
    floor = trials * CONFIDENCE - 3 * math.sqrt(
        trials * CONFIDENCE * (1 - CONFIDENCE))
    assert covered >= floor, (
        f"aggregate coverage {covered}/{trials} below binomial floor "
        f"{floor:.1f}")


class TestDegeneratePlans:
    """Plans that make no statistical claim must stay exact/honest
    rather than fabricating intervals."""

    def test_window_covering_the_whole_program_is_exact(self):
        image, truth = _truth("ipcheck")
        plan = SamplingPlan(n_windows=4, window_length=10_000_000,
                            ramp_length=0)
        run = SampledRunner().run(image, plan)
        # The measured head swallows the entire program: nothing left
        # to estimate, the reconstruction is the truth itself.
        assert not run.windows
        assert run.tail_instructions == 0
        assert run.estimated_cycles == truth
        assert run.covers(truth)

    def test_single_window_claims_no_interval(self):
        image, truth = _truth("crc32")
        plan = SamplingPlan(n_windows=1, window_length=400,
                            ramp_length=256)
        run = SampledRunner().run(image, plan)
        assert len(run.windows) == 1
        assert run.cycles_ci_half is None
        # Vacuous coverage: with no interval there is no claim to
        # falsify, whatever the truth.
        assert run.covers(truth)
        assert run.covers(truth * 100)

    def test_tiny_tail_degenerates_to_contiguous_tiling(self):
        """When n*window_length exceeds the tail, windows tile it
        back-to-back and the estimate is near-exact by construction."""
        image, truth = _truth("ipcheck")
        plan = SamplingPlan(n_windows=8, window_length=6000,
                            ramp_length=512)
        run = SampledRunner().run(image, plan)
        measured = run.head["steps"] + sum(
            w["steps"] for w in run.windows)
        assert measured == run.total_steps
        assert abs(run.estimated_cycles - truth) / truth < 1e-6
