"""Unit surface of :mod:`repro.core.sampling`: plan validation, window
placement, the CLT estimator on synthetic observations (degenerate
cases included), record round-trips, and one end-to-end conservation
check on a registry kernel.

The statistical *coverage* claims live in ``test_sampling_stats.py``
(slow, marked ``sampling``); this module stays fast.
"""

from __future__ import annotations

import json

import pytest

from repro.core.sampling import (
    HEAD_INDEX,
    METRICS,
    SampledRunner,
    SamplingPlan,
    estimate_windows,
    head_spec,
    place_windows,
    z_score,
)
from repro.core.sim import Simulator
from repro.workloads import all_workloads, get


def synthetic_window(index: int, cycles: int, instructions: int = 1000,
                     **overrides) -> dict:
    window = {
        "index": index, "ramp_start": 0, "start": 0, "end": instructions,
        "planned_steps": instructions, "steps": instructions,
        "instructions": instructions, "cycles": cycles,
        "fetch_stall_cycles": 10, "mem_stall_cycles": 20, "traps": 0,
        "ramp_steps": 0, "ramp_instructions": 0, "instruction_mix": {},
        "dcache": {"read_misses": 4, "write_misses": 1},
        "icache": {"read_misses": 2},
    }
    window.update(overrides)
    return window


class TestSamplingPlan:
    def test_defaults_are_valid(self):
        plan = SamplingPlan()
        assert plan.n_windows >= 1
        assert plan.confidence == 0.95

    @pytest.mark.parametrize("kwargs", [
        {"n_windows": 0},
        {"window_length": 0},
        {"ramp_length": -1},
        {"confidence": 0.5},
    ])
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SamplingPlan(**kwargs)

    def test_fingerprint_token_encodes_every_knob(self):
        a = SamplingPlan(n_windows=4, window_length=200, ramp_length=64,
                         seed=7, confidence=0.90)
        assert a.fingerprint_token() == "smp4w200r64s7c90"
        for other in (a.__class__(n_windows=5, window_length=200,
                                  ramp_length=64, seed=7, confidence=0.90),
                      a.__class__(n_windows=4, window_length=200,
                                  ramp_length=64, seed=8, confidence=0.90)):
            assert other.fingerprint_token() != a.fingerprint_token()

    def test_unsupported_confidence_lists_options(self):
        with pytest.raises(ValueError, match="0.95"):
            z_score(0.42)


class TestPlacement:
    PLAN = SamplingPlan(n_windows=8, window_length=100, ramp_length=50,
                        seed=3)

    def test_windows_are_sorted_and_disjoint(self):
        _, specs = place_windows(100_000, self.PLAN, start=100)
        assert len(specs) == 8
        prev_end = 100
        for spec in specs:
            assert spec.ramp_start >= prev_end
            assert spec.ramp_start <= spec.start < spec.end
            assert spec.end - spec.start <= self.PLAN.window_length
            prev_end = spec.end
        assert specs[-1].end <= 100_000

    def test_placement_is_deterministic_in_seed(self):
        a = place_windows(50_000, self.PLAN)
        b = place_windows(50_000, self.PLAN)
        assert a == b
        _, other = place_windows(
            50_000, SamplingPlan(n_windows=8, window_length=100,
                                 ramp_length=50, seed=4))
        assert [s.start for s in other] != [s.start for s in a[1]]

    def test_strides_get_independent_offsets(self):
        """Stratified placement: the per-stride offsets must not all be
        equal (that would reintroduce periodic-program aliasing)."""
        _, specs = place_windows(1_000_000, self.PLAN)
        spacing = 1_000_000 / 8
        offsets = {spec.start - int(i * spacing)
                   for i, spec in enumerate(specs)}
        assert len(offsets) > 1

    def test_window_longer_than_region_degenerates_to_whole_region(self):
        offset, specs = place_windows(
            500, SamplingPlan(n_windows=4, window_length=1000))
        assert offset == 0
        assert len(specs) == 1
        assert (specs[0].start, specs[0].end) == (0, 500)

    def test_empty_region_places_nothing(self):
        assert place_windows(100, self.PLAN, start=100) == (0, [])

    def test_more_windows_than_fit_is_clamped(self):
        _, specs = place_windows(
            450, SamplingPlan(n_windows=64, window_length=100))
        assert len(specs) == 450 // 100

    def test_head_spec_is_clipped_to_the_program(self):
        plan = SamplingPlan(window_length=1000)
        head = head_spec(300, plan)
        assert head.index == HEAD_INDEX
        assert (head.ramp_start, head.start, head.end) == (0, 0, 300)
        assert head_spec(10_000, plan).end == 1000


class TestEstimator:
    def test_single_window_claims_no_interval(self):
        estimates = estimate_windows([synthetic_window(0, 1500)])
        cpi = estimates["cpi"]
        assert cpi.mean == 1.5
        assert cpi.std is None and cpi.ci_half is None
        assert cpi.relative == float("inf")
        assert cpi.covers(123456.0)  # vacuously true: no claim made

    def test_zero_variance_windows_collapse_the_interval(self):
        windows = [synthetic_window(i, 1200) for i in range(8)]
        cpi = estimate_windows(windows)["cpi"]
        assert cpi.mean == 1.2
        assert cpi.std == 0.0 and cpi.ci_half == 0.0
        assert cpi.covers(1.2) and not cpi.covers(1.2001)

    def test_interval_widens_with_confidence(self):
        windows = [synthetic_window(0, 1000), synthetic_window(1, 2000)]
        narrow = estimate_windows(windows, confidence=0.80)["cpi"]
        wide = estimate_windows(windows, confidence=0.99)["cpi"]
        assert narrow.mean == wide.mean == 1.5
        assert wide.ci_half > narrow.ci_half > 0

    def test_zero_instruction_windows_are_excluded(self):
        windows = [synthetic_window(0, 1500),
                   synthetic_window(1, 0, instructions=0, steps=0)]
        assert estimate_windows(windows)["cpi"].n == 1

    def test_every_metric_is_reported(self):
        estimates = estimate_windows(
            [synthetic_window(i, 1000 + i) for i in range(4)])
        assert set(estimates) == set(METRICS)


@pytest.fixture(scope="module")
def crc_image():
    return get("crc32").image()


@pytest.fixture(scope="module")
def crc_run(crc_image):
    plan = SamplingPlan(n_windows=4, window_length=400, ramp_length=256,
                        seed=1)
    return SampledRunner().run(crc_image, plan)


class TestSampledRun:
    def test_phases_partition_the_program_exactly(self, crc_run):
        """The satellite conservation property at unit scale: phase
        retired-instruction counts sum to the survey's exact total and
        phase step counts tile [0, total_steps) with no gaps."""
        run = crc_run
        assert sum(p["instructions"] for p in run.phases) \
            == run.total_instructions
        assert sum(p["steps"] for p in run.phases) == run.total_steps
        position = 0
        for phase in run.phases:
            assert phase["start"] == position
            position = phase["end"]
        assert position == run.total_steps

    def test_head_is_measured_not_estimated(self, crc_run):
        head = crc_run.head
        assert head["index"] == HEAD_INDEX
        assert head["start"] == 0
        assert head["steps"] == head["planned_steps"]
        assert crc_run.estimated_cycles >= head["cycles"]

    def test_record_round_trips_through_json(self, crc_run):
        record = json.loads(crc_run.canonical_json())
        assert record["plan"]["n_windows"] == 4
        assert record["total_steps"] == crc_run.total_steps
        assert len(record["windows"]) == len(crc_run.windows)
        assert record["estimated_cycles"] == crc_run.estimated_cycles

    def test_self_check_passes_on_the_survey_outputs(self, crc_run):
        assert get("crc32").check(crc_run.result_word)

    def test_summary_lines_render(self, crc_run):
        text = "\n".join(crc_run.summary_lines())
        assert "sampled run" in text and "est. cycles" in text


class TestSimulatorIntegration:
    def test_run_sampled_updates_obs_counters(self, crc_image):
        from repro.obs.collect import simulator_snapshot

        sim = Simulator(capture_memory_trace=False)
        plan = SamplingPlan(n_windows=2, window_length=300, ramp_length=128)
        run = sim.run_sampled(crc_image, plan)
        totals = simulator_snapshot(sim)["counters"]
        assert totals["sampling.runs"] == 1
        assert totals["sampling.windows"] == len(run.windows)
        assert totals["sampling.checkpoints"] == len(run.windows) + 1
        assert totals["sampling.measured_steps"] == run.measured_steps()

    def test_runs_are_byte_identical(self, crc_image):
        plan = SamplingPlan(n_windows=3, window_length=300, ramp_length=128,
                            seed=9)
        a = SampledRunner().run(crc_image, plan)
        b = SampledRunner().run(crc_image, plan)
        assert a.canonical_json() == b.canonical_json()

    def test_auto_mode_grows_until_target(self, crc_image):
        runner = SampledRunner()
        plan = SamplingPlan(n_windows=2, window_length=300, ramp_length=128)
        run = runner.run_auto(crc_image, plan,
                              target_relative_error=0.5)
        assert run.auto, "auto log must record the rounds"
        assert run.auto[-1]["n_windows"] >= 2
        # one survey serves every round
        assert runner.counters["runs"] == len(run.auto)


class TestLongRunningRegistry:
    def test_long_kernels_are_excluded_by_default(self):
        default = {w.name for w in all_workloads()}
        full = {w.name for w in all_workloads(include_long=True)}
        long_names = {"xtea_stream", "fir_stream", "ipsum_stream"}
        assert long_names & default == set()
        assert long_names <= full

    def test_long_kernels_declare_the_flag(self):
        for name in ("xtea_stream", "fir_stream", "ipsum_stream"):
            workload = get(name)
            assert workload.long_running
            assert workload.max_instructions >= 4_000_000
