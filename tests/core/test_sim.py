"""Sim box (Figure 1) tests: offline simulation with instruction traces."""

import pytest

from repro.core import ArchitectureConfig, LiquidProcessorSystem, Simulator, simulate
from repro.core.sim import SimReport, _classify
from repro.cpu.decode import decode
from repro.toolchain.asm import encoder
from repro.toolchain.driver import compile_c_program

KERNEL = """
unsigned count[1024];
int main(void) {
    unsigned i;
    volatile unsigned x;
    for (i = 0; i < 20000; i = i + 32) {
        x = count[i % 1024];
    }
    return 7;
}
"""


@pytest.fixture(scope="module")
def kernel_image():
    return compile_c_program(KERNEL)


class TestSimulator:
    def test_runs_and_reports(self, kernel_image):
        report = simulate(kernel_image)
        assert report.result_word == 7
        assert report.cycles > 0
        assert report.instructions > 0
        assert 1.0 < report.cpi < 10.0

    def test_instruction_mix_sums_to_instret(self, kernel_image):
        report = simulate(kernel_image)
        assert sum(report.instruction_mix.values()) == report.instructions
        # The kernel is load/branch heavy.
        assert report.instruction_mix["load"] > 0
        assert report.instruction_mix["branch"] > 0

    def test_memory_trace_captured(self, kernel_image):
        report = simulate(kernel_image)
        assert len(report.memory_trace) > 500
        # The dominant stride of the Figure 7 kernel shows in the miss
        # stream (the full reference stream is polluted by stack slots).
        from repro.analysis import stride_profile
        misses = report.memory_trace.filter(~report.memory_trace.hit)
        strides = stride_profile(misses)
        assert strides[0][0] == 128

    def test_sim_agrees_with_fpx_hardware_counter(self, kernel_image):
        """The Sim box and the FPX cycle counter measure the same
        program; counts agree to within the dispatch overhead (the FPX
        counter is armed slightly before the program's first fetch)."""
        report = simulate(kernel_image)
        fpx = LiquidProcessorSystem().run_image(kernel_image)
        assert abs(fpx.cycles - report.cycles) < 500
        assert fpx.result == report.result_word

    def test_config_respected(self, kernel_image):
        small = simulate(kernel_image,
                         ArchitectureConfig().with_dcache_size(1024))
        large = simulate(kernel_image,
                         ArchitectureConfig().with_dcache_size(4096))
        assert small.cycles > large.cycles
        assert small.dcache["read_misses"] > large.dcache["read_misses"]

    def test_prefetch_config_respected(self, kernel_image):
        plain = simulate(kernel_image,
                         ArchitectureConfig().with_dcache_size(1024))
        prefetching = simulate(
            kernel_image,
            ArchitectureConfig().with_dcache_size(1024)
            .with_prefetch("stride"))
        assert prefetching.cycles < plain.cycles
        assert prefetching.dcache["prefetch"]["useful"] > 0

    def test_custom_extension_executes_in_sim(self):
        from repro.core import POPCOUNT_RECIPE

        source = """
int popcount_xor(int a, int b);
int main(void) { return popcount_xor(0xFF00, 0x00FF); }
int popcount_xor(int a, int b) { return 0; } /* replaced by recipe */
"""
        rewritten, _ = POPCOUNT_RECIPE.rewrite_c(source)
        config = POPCOUNT_RECIPE.apply_to_config(ArchitectureConfig())
        report = simulate(compile_c_program(rewritten), config)
        assert report.result_word == 16
        assert report.instruction_mix.get("custom", 0) == 1

    def test_simulator_reusable_across_images(self):
        simulator = Simulator()
        first = simulator.run(compile_c_program(
            "int main(void) { return 1; }"))
        second = simulator.run(compile_c_program(
            "int main(void) { return 2; }"))
        assert first.result_word == 1
        assert second.result_word == 2

    def test_uart_output_collected(self):
        image = compile_c_program("""
int main(void) {
    puts_uart("sim");
    return 0;
}""", with_libc=True)
        report = simulate(image)
        assert report.uart_output == b"sim\n"

    def test_summary_lines_render(self, kernel_image):
        report = simulate(kernel_image)
        text = "\n".join(report.summary_lines())
        assert "CPI" in text and "instruction mix" in text


class TestClassifier:
    @pytest.mark.parametrize("word,expected", [
        (encoder.arith_imm(__import__("repro.cpu.isa",
                                      fromlist=["Op3"]).Op3.ADD, 1, 2, 3),
         "alu"),
        (encoder.call(4), "call"),
        (encoder.sethi(1, 5), "sethi"),
        (encoder.branch(8, 4), "branch"),
        (encoder.ld_imm(1, 2, 0), "load"),
        (encoder.st_imm(1, 2, 0), "store"),
        (encoder.jmpl_imm(0, 15, 8), "jump"),
        (encoder.cpop1(1, 2, 3, 4), "custom"),
    ])
    def test_classes(self, word, expected):
        assert _classify(decode(word)) == expected
