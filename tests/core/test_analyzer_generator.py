"""Trace analyzer, architecture generator and reconfiguration server —
the full Figure 1 loop."""

import numpy as np
import pytest

from repro.analysis.trace import MemoryTrace
from repro.core import (
    ArchitectureConfig,
    ConfigurationSpace,
    Job,
    ReconfigurationServer,
    TraceAnalyzer,
)
from repro.core.generator import ArchitectureGenerator
from repro.mem.memmap import DEFAULT_MAP
from repro.toolchain.driver import compile_c_program

# The paper's Figure 7 kernel, small enough for quick tests.
FIG7_KERNEL = r"""
unsigned count[1024];

int main(void) {
    unsigned i;
    unsigned address;
    volatile unsigned x;
    for (i = 0; i < 20000; i = i + 32) {
        address = i % 1024;
        x = count[address];
    }
    return 0;
}
"""


def strided_trace(span=4096, stride=128, passes=4) -> MemoryTrace:
    addresses = []
    for _ in range(passes):
        addresses.extend(range(0x4000_2000, 0x4000_2000 + span, stride))
    n = len(addresses)
    return MemoryTrace(np.asarray(addresses, dtype=np.uint64),
                       np.full(n, 4, np.uint8),
                       np.zeros(n, bool), np.ones(n, bool))


class TestTraceAnalyzer:
    def test_recommends_smallest_adequate_cache(self):
        analyzer = TraceAnalyzer(candidate_sizes=[1024, 2048, 4096, 8192])
        report = analyzer.analyze(strided_trace())
        assert report.recommended_dcache_size() == 4096

    def test_detects_dominant_stride_for_prefetch(self):
        analyzer = TraceAnalyzer()
        report = analyzer.analyze(strided_trace(passes=1, span=8192))
        prefetch = [r for r in report.recommendations
                    if r.dimension == "prefetch"]
        assert prefetch and prefetch[0].value == 128

    def test_write_heavy_trace_flags_rmw_penalty(self):
        addresses = np.arange(0, 4000, 4, dtype=np.uint64)
        trace = MemoryTrace(addresses, np.full(len(addresses), 4, np.uint8),
                            np.ones(len(addresses), bool),
                            np.zeros(len(addresses), bool))
        report = TraceAnalyzer().analyze(trace)
        assert any(r.dimension == "write_path"
                   for r in report.recommendations)

    def test_no_candidate_meets_target_falls_back(self):
        # Working set 64 KB with only tiny candidates: both thrash
        # equally, so the fallback recommends the *cheapest* equal point.
        analyzer = TraceAnalyzer(candidate_sizes=[512, 1024])
        report = analyzer.analyze(strided_trace(span=65536, stride=32,
                                                passes=2))
        assert report.recommended_dcache_size() == 512
        reason = [r for r in report.recommendations
                  if r.dimension == "dcache_size"][0].reason
        assert "no candidate met the target" in reason

    def test_pick_config_applies_recommendation(self):
        analyzer = TraceAnalyzer(candidate_sizes=[1024, 4096])
        report = analyzer.analyze(strided_trace())
        config = analyzer.pick_config(ArchitectureConfig(), report)
        assert config.dcache.size == 4096

    def test_summary_lines_render(self):
        report = TraceAnalyzer().analyze(strided_trace())
        text = "\n".join(report.summary_lines())
        assert "working set" in text
        assert "recommend dcache_size" in text


class TestReconfigurationServer:
    def test_configure_charges_synthesis_then_switches_free(self):
        server = ReconfigurationServer()
        outcome1 = server.configure(ArchitectureConfig())
        assert outcome1.synthesis_seconds > 0 and not outcome1.cache_hit
        assert not outcome1.already_loaded
        # Same config again: a no-op, which is NOT a cache hit (the
        # cache is never consulted on that path).
        outcome2 = server.configure(ArchitectureConfig())
        assert outcome2.synthesis_seconds == outcome2.program_seconds == 0.0
        assert outcome2.already_loaded and not outcome2.cache_hit
        # New config: synthesis again.
        outcome3 = server.configure(
            ArchitectureConfig().with_dcache_size(8192))
        assert outcome3.synthesis_seconds > 0 and not outcome3.cache_hit
        # Back to the first: cached bitfile, only programming time.
        outcome4 = server.configure(ArchitectureConfig())
        assert outcome4.synthesis_seconds == 0.0
        assert outcome4.program_seconds > 0
        assert outcome4.cache_hit and not outcome4.already_loaded
        assert server.noop_configs == 1

    def test_run_job_returns_cycles_and_result(self):
        server = ReconfigurationServer()
        image = compile_c_program("int main(void) { return 11 * 3; }")
        result = server.run_job(Job(image=image,
                                    config=ArchitectureConfig(),
                                    name="smoke"))
        assert result.result_word == 33
        assert result.cycles > 0
        assert result.seconds_execution > 0
        assert result.state.name == "DONE"

    def test_queue_processing(self):
        server = ReconfigurationServer()
        image = compile_c_program("int main(void) { return 1; }")
        for index in range(3):
            server.submit(Job(image=image, config=ArchitectureConfig(),
                              name=f"job{index}"))
        results = server.run_queue()
        assert [r.name for r in results] == ["job0", "job1", "job2"]
        # One synthesis, then cached.
        assert results[0].seconds_synthesis > 0
        assert results[1].seconds_synthesis == 0.0

    def test_ledger_accounts_model_time(self):
        server = ReconfigurationServer()
        image = compile_c_program("int main(void) { return 0; }")
        server.run_job(Job(image=image, config=ArchitectureConfig()))
        ledger = server.ledger()
        assert ledger["model_seconds"] > 3000  # synthesis dominates
        assert ledger["cache"]["misses"] == 1


def flaky_client_factory(failing_calls, error="timeout"):
    """A ``client_factory`` whose client fails run_image on the given
    0-based call indices (counted across all clients it builds)."""
    from repro.control import (
        ControlTimeout,
        DeviceError,
        DirectTransport,
        LiquidClient,
    )
    from repro.net.protocol import ErrorResponse

    state = {"calls": 0}

    def factory(platform):
        transport = DirectTransport(platform, platform.config.device_ip,
                                    platform.config.control_port)

        class FlakyClient(LiquidClient):
            def run_image(self, image, **kwargs):
                index = state["calls"]
                state["calls"] += 1
                if index in failing_calls:
                    if error == "timeout":
                        raise ControlTimeout(f"injected failure #{index}")
                    raise DeviceError(ErrorResponse(0x20, "injected"))
                return super().run_image(image, **kwargs)

        return FlakyClient(transport)

    return factory


class TestRunQueueDegradation:
    """Regression: one failed job used to abort the whole queue; now it
    is retried once after a device restart, then recorded as failed."""

    def test_transient_failure_is_retried_and_succeeds(self):
        server = ReconfigurationServer(
            client_factory=flaky_client_factory({0}))
        image = compile_c_program("int main(void) { return 5; }")
        server.submit(Job(image=image, config=ArchitectureConfig(),
                          name="flaky"))
        [result] = server.run_queue()
        assert result.ok
        assert result.attempts == 2
        assert result.result_word == 5
        assert server.jobs_retried == 1
        assert server.jobs_failed == 0

    def test_persistent_failure_recorded_queue_continues(self):
        # Call 0 = job0, calls 1+2 = job1's two attempts, call 3 = job2.
        server = ReconfigurationServer(
            client_factory=flaky_client_factory({1, 2}))
        image = compile_c_program("int main(void) { return 7; }")
        for index in range(3):
            server.submit(Job(image=image, config=ArchitectureConfig(),
                              name=f"job{index}"))
        results = server.run_queue()
        assert [r.name for r in results] == ["job0", "job1", "job2"]
        assert results[0].ok and results[2].ok
        failed = results[1]
        assert not failed.ok
        assert failed.state.name == "ERROR"
        assert failed.attempts == 2
        assert "ControlTimeout" in failed.error
        assert server.jobs_failed == 1
        assert server.jobs_retried == 1
        assert len(server.results) == 3

    def test_device_error_degrades_the_same_way(self):
        server = ReconfigurationServer(
            client_factory=flaky_client_factory({0, 1}, error="device"))
        image = compile_c_program("int main(void) { return 1; }")
        server.submit(Job(image=image, config=ArchitectureConfig(),
                          name="doomed"))
        [result] = server.run_queue()
        assert not result.ok
        assert "DeviceError" in result.error
        assert server.ledger()["jobs_failed"] == 1

    def test_ledger_reports_degradation_counters(self):
        server = ReconfigurationServer()
        ledger = server.ledger()
        assert ledger["jobs_retried"] == 0
        assert ledger["jobs_failed"] == 0

    def test_retry_rebuilds_the_platform_from_scratch(self):
        """Regression: the retry used to go through the *old* client's
        restart() — trusting the very control path that just failed and
        keeping the possibly-wedged platform.  It must invalidate and
        reconfigure instead."""
        server = ReconfigurationServer(
            client_factory=flaky_client_factory({0}))
        image = compile_c_program("int main(void) { return 9; }")
        first = server.configure(ArchitectureConfig())
        assert not first.cache_hit
        wedged_platform = server.platform
        wedged_client = server.client
        server.submit(Job(image=image, config=ArchitectureConfig(),
                          name="wedged"))
        [result] = server.run_queue()
        assert result.ok and result.attempts == 2
        # A full rebuild: new platform, new client, second
        # reconfiguration charged (as a cache hit, not a resynthesis).
        assert server.platform is not wedged_platform
        assert server.client is not wedged_client
        assert server.reconfigurations == 2
        assert result.cache_hit
        assert result.seconds_synthesis == 0.0

    def test_invalidate_forgets_the_node(self):
        server = ReconfigurationServer()
        server.configure(ArchitectureConfig())
        server.invalidate()
        assert server.platform is None
        assert server.client is None
        assert server.current_bitfile is None
        # The next configure is a real reconfiguration (cache hit), not
        # a no-op on the forgotten bitfile.
        outcome = server.configure(ArchitectureConfig())
        assert outcome.cache_hit and not outcome.already_loaded

    def test_results_report_noop_vs_hit_distinctly(self):
        """Regression: a back-to-back job on the loaded architecture
        used to be misreported as ``cache_hit=True`` even though the
        cache was never consulted."""
        server = ReconfigurationServer()
        image = compile_c_program("int main(void) { return 2; }")
        for name in ("first", "warm"):
            server.submit(Job(image=image, config=ArchitectureConfig(),
                              name=name))
        server.submit(Job(image=image,
                          config=ArchitectureConfig().with_dcache_size(8192),
                          name="other"))
        server.submit(Job(image=image, config=ArchitectureConfig(),
                          name="back"))
        first, warm, other, back = server.run_queue()
        assert not first.cache_hit and not first.already_loaded
        assert warm.already_loaded and not warm.cache_hit
        assert warm.seconds_programming == 0.0
        assert not other.cache_hit and not other.already_loaded
        assert back.cache_hit and not back.already_loaded
        assert back.seconds_programming > 0.0
        ledger = server.ledger()
        assert ledger["configs_noop"] == 1
        assert ledger["cache"]["hits"] == 1
        assert ledger["cache"]["misses"] == 2


class TestArchitectureGenerator:
    @pytest.fixture(scope="class")
    def sweep_result(self):
        generator = ArchitectureGenerator()
        image = compile_c_program(FIG7_KERNEL)
        space = ConfigurationSpace.paper_cache_sweep()
        return generator.sweep(image, space, max_instructions=2_000_000)

    def test_sweep_measures_every_point(self, sweep_result):
        assert sweep_result.configs_measured == 5
        assert len(sweep_result.measurements) == 5

    def test_paper_shape_flat_then_knee(self, sweep_result):
        """Figure 8/9: flat high at 1-2 KB, flat minimum from 4 KB on."""
        cycles = {m.config.dcache.size: m.cycles
                  for m in sweep_result.measurements}
        assert cycles[1024] == cycles[2048]
        assert cycles[4096] < cycles[1024]
        assert cycles[4096] == cycles[8192] == cycles[16384]

    def test_best_by_cycles_is_at_or_past_knee(self, sweep_result):
        assert sweep_result.best_by_cycles().config.dcache.size >= 4096

    def test_best_by_seconds_penalizes_slow_clocks(self, sweep_result):
        """Bigger caches clock slower, so the best *time* is the knee
        itself (4 KB), not the largest cache — the liquid-architecture
        insight that more is not better."""
        assert sweep_result.best.config.dcache.size == 4096

    def test_trace_guided_finds_knee_with_fewer_syntheses(self):
        generator = ArchitectureGenerator()
        image = compile_c_program(FIG7_KERNEL)
        space = ConfigurationSpace.paper_cache_sweep()
        result = generator.trace_guided(image, space, shortlist=2,
                                        max_instructions=2_000_000)
        assert result.configs_considered == 5
        assert result.configs_measured <= 3
        assert result.trace_report is not None
        best = result.best_by_cycles()
        assert best.config.dcache.size >= 4096
