"""Synthesis model (Figure 10) and reconfiguration cache/server tests."""

import warnings

import pytest

from repro.core import (
    ArchitectureConfig,
    ConfigurationSpace,
    ExtensionSpec,
    ReconCacheThrashWarning,
    ReconfigurationCache,
    SynthesisError,
    SynthesisModel,
    figure10_table,
)
from repro.core.config import BASELINE
from repro.core.synthesis import (
    DEVICE_BLOCK_RAMS,
    DEVICE_SLICES,
    PAPER_SYNTHESIS_SECONDS,
)


class TestFigure10Calibration:
    def test_baseline_matches_paper_exactly(self):
        """The paper's Figure 10: 7900 slices (41%), 54 BlockRAMs,
        309 IOBs, 30 MHz."""
        utilization = SynthesisModel().estimate(BASELINE)
        assert utilization.slices == 7900
        assert utilization.block_rams == 54
        assert utilization.iobs == 309
        assert utilization.frequency_mhz == 30.0
        assert round(utilization.slice_percent) == 41

    def test_table_rendering(self):
        table = figure10_table()
        assert "7900 of 19200" in table
        assert "41%" in table
        assert "54 of 160" in table
        assert "309 of 404" in table
        assert "30 MHz" in table

    def test_bigger_dcache_needs_more_brams(self):
        model = SynthesisModel()
        small = model.estimate(BASELINE.with_dcache_size(1024))
        large = model.estimate(BASELINE.with_dcache_size(16384))
        assert large.block_rams > small.block_rams

    def test_bigger_caches_slow_the_clock(self):
        model = SynthesisModel()
        small = model.estimate(BASELINE.with_dcache_size(4096))
        large = model.estimate(BASELINE.with_dcache_size(16384))
        assert large.frequency_mhz < small.frequency_mhz

    def test_multiplier_options_trade_area(self):
        model = SynthesisModel()
        iterative = model.estimate(ArchitectureConfig(multiplier="iterative"))
        fast = model.estimate(ArchitectureConfig(multiplier="32x32"))
        assert fast.slices > iterative.slices
        assert fast.frequency_mhz < iterative.frequency_mhz

    def test_extensions_charge_area(self):
        model = SynthesisModel()
        ext = ExtensionSpec("mac", 0x02, slice_cost=420)
        base = model.estimate(BASELINE)
        extended = model.estimate(BASELINE.with_extension(ext))
        assert extended.slices == base.slices + 420

    def test_whole_paper_sweep_fits_the_device(self):
        model = SynthesisModel()
        for config in ConfigurationSpace.paper_cache_sweep():
            utilization = model.estimate(config)
            assert utilization.fits(), config.key()

    def test_oversized_design_rejected(self):
        import dataclasses
        from repro.cache.cache import CacheGeometry
        huge = dataclasses.replace(
            BASELINE, dcache=CacheGeometry(size=1 << 20, line_size=32))
        with pytest.raises(SynthesisError):
            SynthesisModel().synthesize(huge)

    def test_synthesis_time_about_an_hour(self):
        """'Each such instance requires ~1 hour to synthesize.'"""
        bitfile = SynthesisModel().synthesize(BASELINE)
        assert 0.5 * PAPER_SYNTHESIS_SECONDS < bitfile.synthesis_seconds \
            < 2.0 * PAPER_SYNTHESIS_SECONDS

    def test_synthesis_deterministic(self):
        a = SynthesisModel().synthesize(BASELINE)
        b = SynthesisModel().synthesize(BASELINE)
        assert a.synthesis_seconds == b.synthesis_seconds
        assert a.name == b.name


class TestReconfigurationCache:
    def test_miss_then_hit_economics(self):
        cache = ReconfigurationCache()
        _, first, hit = cache.get(BASELINE)
        assert first > 1000.0                   # paid full synthesis
        assert not hit
        bitfile, second, hit = cache.get(BASELINE)
        assert second == 0.0                    # free switch
        assert hit
        assert cache.stats.hits == 1
        assert cache.stats.seconds_saved == pytest.approx(
            bitfile.synthesis_seconds)

    def test_distinct_configs_distinct_entries(self):
        cache = ReconfigurationCache()
        cache.get(BASELINE)
        cache.get(BASELINE.with_dcache_size(8192))
        assert len(cache) == 2

    def test_pregenerate_sweep(self):
        """The paper's workflow: pre-generate the whole parameter space."""
        cache = ReconfigurationCache()
        space = ConfigurationSpace.paper_cache_sweep()
        total = cache.pregenerate(space)
        assert len(cache) == 5
        assert total > 5 * 1000
        # Runtime switching across the space is now free.
        for config in space:
            _, seconds, hit = cache.get(config)
            assert seconds == 0.0 and hit

    def test_capacity_lru_eviction(self):
        cache = ReconfigurationCache(capacity=2)
        a = BASELINE.with_dcache_size(1024)
        b = BASELINE.with_dcache_size(2048)
        c = BASELINE.with_dcache_size(4096)
        cache.get(a)
        cache.get(b)
        cache.get(a)     # a is now more recently used than b
        cache.get(c)     # evicts b
        assert a in cache and c in cache and b not in cache
        assert cache.stats.evictions == 1

    def test_lookup_does_not_synthesize(self):
        cache = ReconfigurationCache()
        assert cache.lookup(BASELINE) is None
        assert cache.stats.misses == 0

    def test_contents_sorted_keys(self):
        cache = ReconfigurationCache()
        cache.get(BASELINE.with_dcache_size(2048))
        cache.get(BASELINE.with_dcache_size(1024))
        assert cache.contents() == sorted(cache.contents())


class CountingSynthesizer:
    """Wraps the real model, counting calls; ``cost`` overrides the
    reported synthesis time (0.0 models a degenerate free synthesis)."""

    def __init__(self, cost=None, delay_seconds=0.0):
        import dataclasses
        self._model = SynthesisModel()
        self._dataclasses = dataclasses
        self.cost = cost
        self.delay_seconds = delay_seconds
        self.calls = 0
        self._lock = __import__("threading").Lock()

    def synthesize(self, config):
        with self._lock:
            self.calls += 1
        if self.delay_seconds:
            __import__("time").sleep(self.delay_seconds)
        bitfile = self._model.synthesize(config)
        if self.cost is not None:
            bitfile = self._dataclasses.replace(bitfile,
                                                synthesis_seconds=self.cost)
        return bitfile


class TestExplicitHitFlag:
    def test_zero_cost_synthesis_is_still_a_miss(self):
        """Regression: a ``synthesis_seconds == 0.0`` sentinel would
        misreport the first get of a free-to-synthesize configuration
        as a hit; the explicit flag must not."""
        cache = ReconfigurationCache(synthesizer=CountingSynthesizer(cost=0.0))
        _, seconds, hit = cache.get(BASELINE)
        assert seconds == 0.0 and not hit
        assert cache.stats.misses == 1 and cache.stats.hits == 0
        _, seconds, hit = cache.get(BASELINE)
        assert seconds == 0.0 and hit
        assert cache.stats.hits == 1


class TestPregenerateThrash:
    def test_over_capacity_batch_warns_and_counts_thrash(self):
        """Regression: pregenerating more distinct configurations than
        the cache holds silently burned the synthesis time and kept
        only the tail of the batch."""
        cache = ReconfigurationCache(capacity=2)
        space = [BASELINE.with_dcache_size(size)
                 for size in (1024, 2048, 4096, 8192)]
        with pytest.warns(ReconCacheThrashWarning,
                          match="4 distinct configurations.*capacity 2"):
            total = cache.pregenerate(space)
        assert total > 4 * 1000
        assert len(cache) == 2
        stats = cache.stats
        assert stats.evictions == 2
        assert stats.thrash_evictions == 2

    def test_fitting_batch_does_not_warn(self):
        cache = ReconfigurationCache(capacity=8)
        space = [BASELINE.with_dcache_size(size)
                 for size in (1024, 2048)]
        with warnings.catch_warnings():
            warnings.simplefilter("error", ReconCacheThrashWarning)
            cache.pregenerate(space)
        assert cache.stats.thrash_evictions == 0

    def test_unrelated_eviction_is_not_thrash(self):
        cache = ReconfigurationCache(capacity=1)
        cache.get(BASELINE.with_dcache_size(1024))
        cache.get(BASELINE.with_dcache_size(2048))
        assert cache.stats.evictions == 1
        assert cache.stats.thrash_evictions == 0


class TestConcurrentAccess:
    def test_same_config_synthesized_exactly_once(self):
        """Eight threads race for one un-synthesized configuration: one
        pays, the rest coalesce onto its in-flight synthesis."""
        from concurrent.futures import ThreadPoolExecutor

        synthesizer = CountingSynthesizer(delay_seconds=0.02)
        cache = ReconfigurationCache(synthesizer=synthesizer)
        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(lambda _: cache.get(BASELINE),
                                     range(8)))
        assert synthesizer.calls == 1
        assert len({id(outcome.bitfile) for outcome in outcomes}) == 1
        stats = cache.stats
        assert stats.misses == 1
        assert stats.hits == 7
        assert stats.hits + stats.misses == 8
        # Every non-owner either coalesced on the in-flight event or
        # arrived after the insert; hit accounting covers both.
        assert 0 <= stats.coalesced <= 7
        assert sum(1 for outcome in outcomes if not outcome.hit) == 1

    def test_distinct_configs_synthesize_once_each(self):
        from concurrent.futures import ThreadPoolExecutor

        synthesizer = CountingSynthesizer(delay_seconds=0.005)
        cache = ReconfigurationCache(synthesizer=synthesizer)
        space = [BASELINE.with_dcache_size(size)
                 for size in (1024, 2048, 4096, 8192)]
        work = space * 4
        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(cache.get, work))
        assert synthesizer.calls == 4
        assert len(cache) == 4
        stats = cache.stats
        assert stats.misses == 4
        assert stats.hits == 12
        assert all(outcome.bitfile.config in space for outcome in outcomes)

    def test_failed_synthesis_releases_waiters(self):
        """A synthesis that raises must wake coalesced waiters and let
        one of them retry as the new owner, not deadlock the key."""
        import dataclasses

        class FlakySynthesizer(CountingSynthesizer):
            def synthesize(self, config):
                bitfile = super().synthesize(config)
                if self.calls == 1:
                    raise SynthesisError("injected place-and-route fail")
                return bitfile

        cache = ReconfigurationCache(synthesizer=FlakySynthesizer())
        with pytest.raises(SynthesisError):
            cache.get(BASELINE)
        _, _, hit = cache.get(BASELINE)
        assert not hit
        assert cache.stats.misses == 1


class TestCrossProcessDeterminism:
    def test_synthesis_time_uses_stable_digest(self):
        """Python's ``hash()`` is salted per process; the jitter must use
        a stable digest so EXPERIMENTS.md numbers reproduce anywhere."""
        import subprocess
        import sys

        snippet = ("from repro.core import SynthesisModel;"
                   "from repro.core.config import BASELINE;"
                   "print(SynthesisModel().synthesize(BASELINE)"
                   ".synthesis_seconds)")
        runs = {
            subprocess.run([sys.executable, "-c", snippet],
                           capture_output=True, text=True,
                           check=True).stdout.strip()
            for _ in range(2)
        }
        assert len(runs) == 1
        from repro.core import SynthesisModel
        from repro.core.config import BASELINE
        in_process = str(SynthesisModel().synthesize(BASELINE)
                         .synthesis_seconds)
        assert runs == {in_process}
