"""LiquidProcessorSystem facade + rewrite-recipe (custom instruction) tests."""

import pytest

from repro.core import (
    ArchitectureConfig,
    BUILTIN_RECIPES,
    LiquidProcessorSystem,
    MAC_RECIPE,
    POPCOUNT_RECIPE,
    SATADD_RECIPE,
    install_recipes,
)
from repro.net.channel import ChannelConfig
from repro.toolchain.cc import compile_c


class TestFacade:
    @pytest.fixture(scope="class")
    def system(self):
        return LiquidProcessorSystem()

    def test_run_c(self, system):
        run = system.run_c("int main(void) { return 6 * 7; }")
        assert run.result == 42
        assert run.cycles > 0
        assert run.state == "DONE"

    def test_run_asm(self, system):
        run = system.run_asm("""
    .global main
main:
    retl
    mov 9, %o0
""")
        assert run.result == 9

    def test_seconds_derived_from_synthesized_frequency(self, system):
        run = system.run_c("int main(void) { return 0; }")
        assert run.seconds == pytest.approx(
            run.cycles / (system.bitfile.utilization.frequency_mhz * 1e6))

    def test_utilization_table(self, system):
        assert "Logic Slices" in system.utilization_table()

    def test_statistics_include_bitfile(self, system):
        stats = system.statistics()
        assert stats["bitfile"].startswith("liquid_")
        assert stats["frequency_mhz"] == 30.0

    def test_lossy_channel_system(self):
        system = LiquidProcessorSystem(
            channel=ChannelConfig(loss=0.2, reorder=0.2), seed=5)
        run = system.run_c("int main(void) { return 123; }")
        assert run.result == 123

    def test_unknown_extension_rejected(self):
        from repro.core import ExtensionSpec
        config = ArchitectureConfig().with_extension(
            ExtensionSpec("mystery", 0x55))
        with pytest.raises(KeyError):
            LiquidProcessorSystem(config)


class TestRecipes:
    def test_popcount_recipe_c_rewrite_and_execution(self):
        """Fig 1's loop: rewrite the C source to use the accelerator,
        configure the architecture with it, and get the same answer."""
        source = """
int popcount_xor(int a, int b) {
    int value = a ^ b;
    int count = 0;
    while (value) { count += value & 1; value = (value >> 1) & 0x7FFFFFFF; }
    return count;
}
int main(void) { return popcount_xor(0xF0F0, 0x0F0F); }
"""
        plain = LiquidProcessorSystem().run_c(source)
        assert plain.result == 16

        rewritten, substitutions = POPCOUNT_RECIPE.rewrite_c(source)
        assert substitutions >= 1
        config = POPCOUNT_RECIPE.apply_to_config(ArchitectureConfig())
        accelerated = LiquidProcessorSystem(config).run_c(rewritten)
        assert accelerated.result == 16
        assert accelerated.cycles < plain.cycles

    def test_mac_recipe_asm_peephole(self):
        asm = compile_c("""
int main(void) {
    int acc = 0;
    int a = 3, b = 4;
    acc = acc + a * b;
    return acc;
}""")
        rewritten, count = MAC_RECIPE.rewrite_asm(asm)
        # The peephole may or may not fire depending on register choice;
        # the pattern test below pins the mechanics deterministically.
        deterministic = "    smul %l0, %l1, %l2\n    add %l3, %l2, %l3"
        replaced, hits = MAC_RECIPE.rewrite_asm(deterministic)
        assert hits == 1
        assert "custom 2, %l0, %l1, %l3" in replaced

    def test_mac_semantics_via_builtin(self):
        config = MAC_RECIPE.apply_to_config(ArchitectureConfig())
        system = LiquidProcessorSystem(config)
        run = system.run_c("""
int main(void) {
    /* rd starts as the accumulator: custom MAC does rd += a*b */
    int acc = 5;
    acc = __builtin_custom(2, 6, 7) + acc * 0;
    return acc;
}""")
        # __builtin_custom result register starts at whatever the stack
        # temp held; semantics are rd += rs1*rs2 — with a fresh temp the
        # observable result is rs1*rs2 plus the temp's prior value, which
        # the compiler zeroes nothing into.  Assert via direct install:
        assert run.state == "DONE"

    def test_mac_semantics_direct(self):
        from repro.cpu.decode import decode
        from repro.cpu.iu import IntegerUnit
        from repro.mem.interface import FlatMemory
        from repro.toolchain.asm import encoder

        mem = FlatMemory(size=4096, base=0)
        iu = IntegerUnit(mem, mem)
        MAC_RECIPE.install(iu)
        iu.regs.write(1, 6)
        iu.regs.write(2, 7)
        iu.regs.write(3, 100)  # accumulator
        iu._dispatch(decode(encoder.cpop1(3, 2, 1, 2)))
        assert iu.regs.read(3) == 142

    def test_satadd_saturates(self):
        from repro.cpu.decode import decode
        from repro.cpu.iu import IntegerUnit
        from repro.mem.interface import FlatMemory
        from repro.toolchain.asm import encoder

        mem = FlatMemory(size=4096, base=0)
        iu = IntegerUnit(mem, mem)
        SATADD_RECIPE.install(iu)
        iu.regs.write(1, 0x7FFF_FFF0)
        iu.regs.write(2, 0x100)
        iu._dispatch(decode(encoder.cpop1(3, 3, 1, 2)))
        assert iu.regs.read(3) == 0x7FFF_FFFF  # clamped

    def test_install_recipes_rejects_unknown(self):
        from repro.core import ExtensionSpec
        from repro.cpu.iu import IntegerUnit
        from repro.mem.interface import FlatMemory

        mem = FlatMemory(size=64, base=0)
        iu = IntegerUnit(mem, mem)
        config = ArchitectureConfig().with_extension(
            ExtensionSpec("nope", 0x7F))
        with pytest.raises(KeyError):
            install_recipes(iu, config)

    def test_builtin_recipe_registry(self):
        assert set(BUILTIN_RECIPES) == {"popc", "mac", "satadd"}
        opfs = [r.extension.opf for r in BUILTIN_RECIPES.values()]
        assert len(opfs) == len(set(opfs))
