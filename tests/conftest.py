"""Shared fixtures and helpers for the Liquid Architecture test suite."""

from __future__ import annotations

import pytest

from repro.cpu import IntegerUnit
from repro.mem.interface import FlatMemory
from repro.mem.memmap import DEFAULT_MAP
from repro.toolchain import assemble, link
from repro.toolchain.linker import MemoryMapScript

RAM_BASE = 0x4000_0000
RAM_SIZE = 1 << 20
CODE_BASE = 0x4000_1000
STACK_TOP = RAM_BASE + RAM_SIZE - 0x100


def build(source: str, text_base: int = CODE_BASE):
    """Assemble + link a standalone test program."""
    return link([assemble(source)], MemoryMapScript.default(text_base))


def make_iu(source: str | None = None, *, nwindows: int = 8,
            stack: bool = True) -> tuple[IntegerUnit, FlatMemory]:
    """An IU over flat memory, optionally preloaded with a program whose
    entry is CODE_BASE.  Traps are left disabled (ET=0) — unit tests for
    instruction semantics don't want trap handling, they want the raw
    architectural effect; tests that need traps enable them explicitly."""
    mem = FlatMemory(size=RAM_SIZE, base=RAM_BASE)
    entry = CODE_BASE
    if source is not None:
        image = build(source)
        for base, blob in image.segments.items():
            mem.load(base, blob)
        entry = image.entry
    iu = IntegerUnit(mem, mem, nwindows=nwindows, reset_pc=entry)
    if stack:
        iu.regs.write(14, STACK_TOP)  # %sp
    return iu, mem


def run_to_label(iu: IntegerUnit, image_or_addr, label: str | None = None,
                 max_instructions: int = 100_000) -> int:
    """Run until the pc hits *label* (or an absolute address)."""
    if label is not None:
        target = image_or_addr.symbols[label]
    else:
        target = image_or_addr
    return iu.run(max_instructions=max_instructions, until_pc=target)


def run_source(source: str, max_instructions: int = 100_000,
               nwindows: int = 8) -> tuple[IntegerUnit, FlatMemory, dict]:
    """Assemble, run until the program reaches the ``done`` label, and
    return (iu, memory, symbols).  Programs must define ``done:``."""
    image = build(source)
    iu, mem = make_iu(source, nwindows=nwindows)
    iu.run(max_instructions=max_instructions,
           until_pc=image.symbols["done"])
    return iu, mem, image.symbols


@pytest.fixture
def flat_memory():
    return FlatMemory(size=RAM_SIZE, base=RAM_BASE)


@pytest.fixture
def platform():
    """A booted default FPX platform."""
    from repro.fpx import FPXPlatform

    plat = FPXPlatform()
    plat.boot()
    return plat


@pytest.fixture
def client(platform):
    from repro.control import DirectTransport, LiquidClient

    transport = DirectTransport(platform, platform.config.device_ip,
                                platform.config.control_port)
    return LiquidClient(transport)


@pytest.fixture
def memmap():
    return DEFAULT_MAP
