"""Fault-injecting channel tests: determinism, loss, reorder, duplicate."""

import pytest

from repro.net.channel import (
    Channel,
    ChannelConfig,
    ChannelStarvation,
    duplex,
    pump,
)


def send_many(channel: Channel, count: int = 100) -> list[bytes]:
    datagrams = [bytes([i % 256]) * 4 for i in range(count)]
    for datagram in datagrams:
        channel.send(datagram)
    return datagrams


class TestPerfectChannel:
    def test_in_order_lossless_delivery(self):
        channel = Channel()
        sent = send_many(channel, 50)
        assert channel.deliver() == sent

    def test_idle_after_drain(self):
        channel = Channel()
        send_many(channel, 3)
        channel.deliver()
        assert channel.idle

    def test_stats(self):
        channel = Channel()
        send_many(channel, 5)
        channel.deliver()
        stats = channel.stats()
        assert stats["sent"] == 5
        assert stats["delivered"] == 5
        assert stats["dropped"] == 0


class TestZeroLengthDatagrams:
    """Regression: corrupting an empty datagram used to crash deliver()
    with ``ValueError`` from ``rng.integers(0)``."""

    def test_empty_datagram_survives_certain_corruption(self):
        channel = Channel(ChannelConfig(corrupt=1.0), seed=3)
        channel.send(b"")
        assert channel.deliver() == [b""]
        assert channel.corrupted == 0

    def test_empty_datagrams_mixed_with_real_traffic(self):
        channel = Channel(ChannelConfig(corrupt=1.0), seed=3)
        channel.send(b"")
        channel.send(b"payload")
        channel.send(b"")
        delivered = channel.deliver()
        assert delivered[0] == b"" and delivered[2] == b""
        assert delivered[1] != b"payload"  # the real one was corrupted
        assert channel.corrupted == 1

    def test_empty_datagram_other_faults_still_apply(self):
        channel = Channel(ChannelConfig(loss=1.0, corrupt=1.0), seed=3)
        channel.send(b"")
        assert channel.deliver() == []
        assert channel.dropped == 1


class TestFaults:
    def test_loss_drops_roughly_the_configured_fraction(self):
        channel = Channel(ChannelConfig(loss=0.3), seed=42)
        send_many(channel, 1000)
        delivered = channel.drain_all()
        assert 550 < len(delivered) < 850

    def test_total_loss(self):
        channel = Channel(ChannelConfig(loss=1.0), seed=1)
        send_many(channel, 20)
        assert channel.drain_all() == []
        assert channel.dropped == 20

    def test_duplication_delivers_extras(self):
        channel = Channel(ChannelConfig(duplicate=0.5), seed=7)
        send_many(channel, 200)
        delivered = channel.drain_all()
        assert len(delivered) > 200
        assert channel.duplicated == len(delivered) - 200

    def test_reordering_changes_order_not_content(self):
        channel = Channel(ChannelConfig(reorder=0.4), seed=3)
        sent = send_many(channel, 100)
        delivered = channel.drain_all()
        assert sorted(delivered) == sorted(sent)
        assert delivered != sent
        assert channel.reordered > 0

    def test_corruption_flips_bytes(self):
        channel = Channel(ChannelConfig(corrupt=1.0), seed=5)
        channel.send(b"\x00\x00\x00\x00")
        [datagram] = channel.deliver()
        assert datagram != b"\x00\x00\x00\x00"
        assert channel.corrupted == 1

    def test_determinism_per_seed(self):
        def run(seed):
            channel = Channel(ChannelConfig(loss=0.2, reorder=0.2,
                                            duplicate=0.1), seed=seed)
            send_many(channel, 100)
            return channel.drain_all()

        assert run(9) == run(9)
        assert run(9) != run(10)

    def test_delayed_datagrams_eventually_arrive(self):
        channel = Channel(ChannelConfig(reorder=1.0, max_delay_slots=2),
                          seed=2)
        channel.send(b"late")
        first = channel.deliver()
        assert b"late" not in first
        rest = channel.drain_all()
        assert b"late" in rest

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            ChannelConfig(loss=1.5)


class TestConfigValidation:
    """Regression: ``reorder > 0`` with ``max_delay_slots=0`` used to
    pass validation, then crash the first time the reorder branch drew
    ``integers(1, 1)`` (low >= high) mid-delivery."""

    def test_zero_delay_slots_rejected(self):
        with pytest.raises(ValueError, match="max_delay_slots"):
            ChannelConfig(reorder=0.5, max_delay_slots=0)

    def test_negative_delay_slots_rejected(self):
        with pytest.raises(ValueError, match="max_delay_slots"):
            ChannelConfig(max_delay_slots=-1)

    def test_one_slot_is_the_floor_and_works(self):
        channel = Channel(ChannelConfig(reorder=1.0, max_delay_slots=1),
                          seed=4)
        channel.send(b"x")
        assert channel.deliver() == []
        assert channel.deliver() == [b"x"]


class TestStarvation:
    """Regression: drain_all/pump used to run a fixed round count and
    silently return with datagrams still delayed in the channel."""

    def _stuffed(self):
        # reorder=1.0 keeps every datagram bouncing between the delayed
        # list and re-delivery, so a small budget cannot finish.
        channel = Channel(ChannelConfig(reorder=1.0, max_delay_slots=3),
                          seed=6)
        send_many(channel, 50)
        return channel

    def test_drain_all_raises_instead_of_dropping(self):
        with pytest.raises(ChannelStarvation, match="not idle after"):
            self._stuffed().drain_all(max_rounds=1)

    def test_pump_raises_instead_of_dropping(self):
        channel = self._stuffed()
        with pytest.raises(ChannelStarvation):
            pump(channel, lambda datagram: None, max_rounds=1)

    def test_starvation_reports_whats_stuck(self):
        channel = Channel(ChannelConfig(reorder=1.0, max_delay_slots=3),
                          seed=6)
        channel.send(b"a")
        channel.send(b"b")
        with pytest.raises(ChannelStarvation) as excinfo:
            channel.drain_all(max_rounds=1)
        assert excinfo.value.in_flight + excinfo.value.delayed == 2

    def test_generous_budget_still_drains_clean(self):
        channel = self._stuffed()
        delivered = channel.drain_all()
        assert len(delivered) == 50
        assert channel.idle


class TestHelpers:
    def test_duplex_pair_is_independent(self):
        a, b = duplex(seed=11)
        a.send(b"to-device")
        assert b.deliver() == []
        assert a.deliver() == [b"to-device"]

    def test_pump_invokes_handler(self):
        channel = Channel()
        send_many(channel, 4)
        received = []
        count = pump(channel, received.append)
        assert count == 4
        assert len(received) == 4
