"""Control-protocol codec and program-assembly tests (paper §2.6)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import protocol
from repro.net.protocol import (
    Command,
    LeonState,
    LoadChunk,
    ProgramAssembler,
    ProtocolError,
    ReadRequest,
    Response,
    RestartRequest,
    StartRequest,
    StatusRequest,
    decode_command,
    decode_response,
    packetize_program,
)


class TestCommandCodecs:
    def test_status_roundtrip(self):
        assert isinstance(decode_command(protocol.encode_status_request()),
                          StatusRequest)

    def test_restart_roundtrip(self):
        assert isinstance(decode_command(protocol.encode_restart()),
                          RestartRequest)

    def test_load_chunk_roundtrip(self):
        payload = protocol.encode_load_chunk(2, 5, 0x4000_1100, b"\x01\x02")
        chunk = decode_command(payload)
        assert chunk == LoadChunk(2, 5, 0x4000_1100, b"\x01\x02")

    def test_load_trailing_bytes_ignored(self):
        """'If the program is shorter than the UDP packet length ... the
        remaining bytes would be ignored.'"""
        payload = protocol.encode_load_chunk(0, 1, 0x4000_1000, b"AB")
        chunk = decode_command(payload + b"PADDINGPADDING")
        assert chunk.data == b"AB"

    def test_load_shorter_than_length_rejected(self):
        payload = protocol.encode_load_chunk(0, 1, 0x4000_1000, b"ABCD")
        with pytest.raises(ProtocolError):
            decode_command(payload[:-2])

    def test_load_bad_sequence_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.encode_load_chunk(5, 5, 0, b"x")

    def test_start_roundtrip(self):
        request = decode_command(protocol.encode_start(0x4000_2000))
        assert request == StartRequest(0x4000_2000)

    def test_read_roundtrip(self):
        request = decode_command(protocol.encode_read_memory(0x4000_0008, 16))
        assert request == ReadRequest(0x4000_0008, 16)

    def test_read_length_limits(self):
        with pytest.raises(ProtocolError):
            protocol.encode_read_memory(0, 0)
        with pytest.raises(ProtocolError):
            protocol.encode_read_memory(0, protocol.MAX_READ_BYTES + 1)

    def test_unknown_command_rejected(self):
        with pytest.raises(ProtocolError):
            decode_command(b"\x7f")

    def test_empty_payload_rejected(self):
        with pytest.raises(ProtocolError):
            decode_command(b"")

    def test_command_codes_are_unique(self):
        codes = [c.value for c in Command]
        assert len(codes) == len(set(codes))


class TestResponseCodecs:
    def test_status_response(self):
        payload = protocol.encode_status_response(LeonState.RUNNING, 9999)
        response = decode_response(payload)
        assert response.state == LeonState.RUNNING
        assert response.cycles == 9999

    def test_memory_data(self):
        payload = protocol.encode_memory_data(0x4000_0008, b"\xde\xad")
        response = decode_response(payload)
        assert response.address == 0x4000_0008
        assert response.data == b"\xde\xad"

    def test_error_response_with_message(self):
        payload = protocol.encode_error(0x42, "bad things")
        response = decode_response(payload)
        assert response.code == 0x42
        assert response.message == "bad things"

    def test_load_ack_and_started(self):
        assert decode_response(protocol.encode_load_ack(3, 7)).received == 3
        assert decode_response(protocol.encode_started(0x40001000)).entry \
            == 0x40001000

    def test_load_ack_missing_list_roundtrip(self):
        ack = decode_response(protocol.encode_load_ack(5, 8, (2, 4, 6)))
        assert (ack.received, ack.total, ack.missing) == (5, 8, (2, 4, 6))

    def test_load_ack_seed_format_still_decodes(self):
        """The 5-byte seed wire format (no missing list) must keep
        parsing: it is what pre-fix devices emit."""
        import struct

        payload = struct.pack("!BHH", Response.LOAD_ACK, 3, 7)
        ack = decode_response(payload)
        assert (ack.received, ack.total, ack.missing) == (3, 7, ())

    def test_load_ack_empty_missing_is_wire_identical_to_seed(self):
        assert protocol.encode_load_ack(7, 7, ()) == \
            protocol.encode_load_ack(7, 7)
        assert len(protocol.encode_load_ack(7, 7)) == 5

    def test_load_ack_missing_list_is_capped(self):
        ack = decode_response(protocol.encode_load_ack(
            0, 500, tuple(range(500))))
        assert len(ack.missing) == protocol.MAX_ACK_MISSING
        assert ack.missing == tuple(range(protocol.MAX_ACK_MISSING))

    def test_load_ack_truncated_missing_list_rejected(self):
        payload = protocol.encode_load_ack(1, 4, (2, 3))
        with pytest.raises(ProtocolError):
            decode_response(payload[:-1])

    def test_response_codes_have_top_bit(self):
        for code in Response:
            assert code.value & 0x80

    @given(state=st.sampled_from(list(LeonState)),
           cycles=st.integers(0, 0xFFFF_FFFF))
    def test_status_roundtrip_property(self, state, cycles):
        response = decode_response(
            protocol.encode_status_response(state, cycles))
        assert (response.state, response.cycles) == (state, cycles)


#: Every decodable response, well-formed, as fuzz corpus seeds.
_WELL_FORMED_RESPONSES = [
    protocol.encode_status_response(LeonState.DONE, 123456),
    protocol.encode_load_ack(3, 7),
    protocol.encode_load_ack(5, 8, (2, 4, 6)),
    protocol.encode_started(0x4000_1000),
    protocol.encode_restarted(),
    protocol.encode_trace_data(64, 0, b"\x01" * 16),
    protocol.encode_memory_data(0x4000_0008, b"\xde\xad\xbe\xef"),
    protocol.encode_error(0x42, "bad things"),
]


class TestResponseDecoderFuzz:
    """Negative-path fuzz: the decoder's only failure mode is
    ProtocolError — struct.error / IndexError / ValueError must never
    leak, whatever arrives off the wire."""

    @given(data=st.sampled_from(_WELL_FORMED_RESPONSES),
           cut=st.integers(1, 20))
    def test_truncated_responses_raise_protocol_error(self, data, cut):
        truncated = data[:max(0, len(data) - cut)]
        try:
            decode_response(truncated)
        except ProtocolError:
            pass  # the only acceptable exception

    @given(received=st.integers(0, 0xFFFF), total=st.integers(0, 0xFFFF),
           missing=st.lists(st.integers(0, 0xFFFF), min_size=1,
                            max_size=16),
           cut=st.integers(1, 32))
    def test_load_ack_missing_list_truncations(self, received, total,
                                               missing, cut):
        payload = protocol.encode_load_ack(received, total, tuple(missing))
        with pytest.raises(ProtocolError):
            decode_response(payload[:-min(cut, len(payload) - 5)] if
                            cut < len(payload) - 5 else payload[:6])

    @given(count=st.integers(1, 255), body=st.binary(max_size=8))
    def test_load_ack_lying_count_byte(self, count, body):
        """A count byte promising more entries than the datagram holds.

        Counts above MAX_ACK_MISSING cannot be emitted by the encoder,
        so the decoder treats that byte as trailer territory (a request
        tag starts with TAG_MAGIC > MAX_ACK_MISSING) and returns an
        empty missing list instead of failing.
        """
        import struct

        payload = struct.pack("!BHHB", Response.LOAD_ACK, 1, 4, count) + body
        if count > protocol.MAX_ACK_MISSING:
            ack = decode_response(payload)
            assert ack.missing == ()
        elif len(body) >= 2 * count:
            ack = decode_response(payload)
            assert len(ack.missing) == count
        else:
            with pytest.raises(ProtocolError):
                decode_response(payload)

    @given(payload=st.binary(min_size=0, max_size=64))
    def test_arbitrary_garbage_never_leaks_internal_errors(self, payload):
        try:
            decode_response(payload)
        except ProtocolError:
            pass

    @given(opcode=st.integers(0, 255), body=st.binary(max_size=32))
    def test_unknown_opcodes_raise_protocol_error(self, opcode, body):
        known = {int(r) for r in Response}
        if opcode in known:
            return
        with pytest.raises(ProtocolError):
            decode_response(bytes([opcode]) + body)

    @given(state=st.integers(0, 255), cycles=st.integers(0, 0xFFFF_FFFF))
    def test_status_with_invalid_state_byte(self, state, cycles):
        import struct

        payload = struct.pack("!BBI", Response.STATUS, state, cycles)
        if state in {int(s) for s in LeonState}:
            assert decode_response(payload).cycles == cycles
        else:
            with pytest.raises(ProtocolError):
                decode_response(payload)

    @given(payload=st.binary(min_size=0, max_size=64))
    def test_command_decoder_same_guarantee(self, payload):
        try:
            decode_command(payload)
        except ProtocolError:
            pass


class TestPacketizer:
    def test_single_packet_program(self):
        payloads = packetize_program(0x4000_1000, b"\x01" * 64)
        assert len(payloads) == 1
        chunk = decode_command(payloads[0])
        assert chunk.total == 1 and chunk.seq == 0

    def test_multi_packet_addresses_are_sequential(self):
        blob = bytes(range(256)) + bytes(100)
        payloads = packetize_program(0x4000_1000, blob, chunk=128)
        chunks = [decode_command(p) for p in payloads]
        assert [c.seq for c in chunks] == [0, 1, 2]
        assert [c.address for c in chunks] == [
            0x4000_1000, 0x4000_1080, 0x4000_1100]
        assert b"".join(c.data for c in chunks) == blob

    def test_empty_program_rejected(self):
        with pytest.raises(ProtocolError):
            packetize_program(0, b"")

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ProtocolError):
            packetize_program(0, b"x" * 8, chunk=6)

    @given(blob=st.binary(min_size=1, max_size=2000),
           chunk=st.sampled_from([4, 64, 128, 256]))
    def test_packetize_reassemble_roundtrip(self, blob, chunk):
        payloads = packetize_program(0x4000_1000, blob, chunk)
        assembler = ProgramAssembler()
        for payload in payloads:
            assembler.add(decode_command(payload))
        assert assembler.complete
        rebuilt = bytearray(len(blob))
        for address, data in assembler.writes():
            offset = address - 0x4000_1000
            rebuilt[offset:offset + len(data)] = data
        assert bytes(rebuilt) == blob


class TestProgramAssembler:
    def _chunks(self, count=4):
        blob = bytes(range(count * 16))
        return [decode_command(p)
                for p in packetize_program(0x4000_1000, blob, chunk=16)]

    def test_missing_tracks_gaps(self):
        chunks = self._chunks(4)
        assembler = ProgramAssembler()
        assert assembler.missing() == ()  # total unknown yet
        assembler.add(chunks[1])
        assert assembler.missing() == (0, 2, 3)
        assembler.add(chunks[3])
        assert assembler.missing() == (0, 2)
        for chunk in (chunks[0], chunks[2]):
            assembler.add(chunk)
        assert assembler.missing() == ()

    def test_out_of_order_completion(self):
        chunks = self._chunks(4)
        assembler = ProgramAssembler()
        for chunk in (chunks[3], chunks[0], chunks[2]):
            assert not assembler.complete
            assembler.add(chunk)
        assembler.add(chunks[1])
        assert assembler.complete
        assert assembler.base_address() == 0x4000_1000

    def test_duplicates_are_idempotent(self):
        chunks = self._chunks(2)
        assembler = ProgramAssembler()
        assembler.add(chunks[0])
        assembler.add(chunks[0])
        assert assembler.received == 1
        assembler.add(chunks[1])
        assert assembler.complete

    def test_new_total_resets_assembler(self):
        assembler = ProgramAssembler()
        assembler.add(LoadChunk(0, 2, 0x4000_1000, b"old!"))
        assembler.add(LoadChunk(0, 3, 0x4000_2000, b"new!"))  # new load
        assert assembler.total == 3
        assert assembler.received == 1

    def test_base_address_without_chunks_raises(self):
        with pytest.raises(ProtocolError):
            ProgramAssembler().base_address()

    def test_writes_sorted_by_sequence(self):
        chunks = self._chunks(3)
        assembler = ProgramAssembler()
        for chunk in reversed(chunks):
            assembler.add(chunk)
        addresses = [address for address, _ in assembler.writes()]
        assert addresses == sorted(addresses)
