"""IPv4/UDP codec tests, including checksum behaviour and properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.packets import (
    Ipv4Packet,
    PacketError,
    UdpDatagram,
    build_udp_packet,
    format_ip,
    internet_checksum,
    parse_ip,
    parse_udp_packet,
)


class TestChecksum:
    def test_rfc1071_example(self):
        # Classic example from RFC 1071 §3.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_checksum_of_data_plus_checksum_is_zero(self):
        data = b"liquid architecture"
        checksum = internet_checksum(data)
        padded = data + b"\x00"  # odd length handling
        combined = padded[:len(data)] + b""  # keep original
        # Verify: sum including the checksum folds to 0xFFFF (i.e. ~0 == 0).
        check_bytes = checksum.to_bytes(2, "big")
        assert internet_checksum(data + (b"\x00" if len(data) % 2 else b"")
                                 + check_bytes) == 0

    def test_odd_length_padded(self):
        assert internet_checksum(b"\xff") == internet_checksum(b"\xff\x00")


class TestIpHelpers:
    def test_parse_and_format_roundtrip(self):
        value = parse_ip("128.252.153.2")
        assert format_ip(value) == "128.252.153.2"

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1",
                                     "a.b.c.d", ""])
    def test_bad_addresses_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_ip(bad)


class TestIpv4:
    def test_encode_decode_roundtrip(self):
        packet = Ipv4Packet(src_ip=parse_ip("10.0.0.1"),
                            dst_ip=parse_ip("10.0.0.2"),
                            payload=b"hello", identification=7)
        decoded = Ipv4Packet.decode(packet.encode())
        assert decoded.src_ip == packet.src_ip
        assert decoded.dst_ip == packet.dst_ip
        assert decoded.payload == b"hello"
        assert decoded.identification == 7

    def test_header_checksum_verified(self):
        raw = bytearray(Ipv4Packet(src_ip=1, dst_ip=2, payload=b"x").encode())
        raw[12] ^= 0xFF  # corrupt source IP
        with pytest.raises(PacketError):
            Ipv4Packet.decode(bytes(raw))

    def test_truncated_rejected(self):
        with pytest.raises(PacketError):
            Ipv4Packet.decode(b"\x45\x00")

    def test_non_v4_rejected(self):
        raw = bytearray(Ipv4Packet(src_ip=1, dst_ip=2).encode())
        raw[0] = 0x65  # version 6
        with pytest.raises(PacketError):
            Ipv4Packet.decode(bytes(raw))

    def test_trailing_garbage_ignored_via_total_length(self):
        packet = Ipv4Packet(src_ip=1, dst_ip=2, payload=b"abc")
        decoded = Ipv4Packet.decode(packet.encode() + b"JUNK")
        assert decoded.payload == b"abc"


class TestUdp:
    def test_encode_decode_roundtrip(self):
        datagram = UdpDatagram(1234, 2000, b"payload")
        decoded = UdpDatagram.decode(datagram.encode(5, 6), 5, 6)
        assert decoded.src_port == 1234
        assert decoded.dst_port == 2000
        assert decoded.payload == b"payload"

    def test_checksum_includes_pseudo_header(self):
        datagram = UdpDatagram(1, 2, b"x").encode(src_ip=10, dst_ip=20)
        # Decoding with different pseudo-header must fail the checksum.
        with pytest.raises(PacketError):
            UdpDatagram.decode(datagram, src_ip=10, dst_ip=21)

    def test_corrupted_payload_detected(self):
        raw = bytearray(UdpDatagram(1, 2, b"abcdef").encode(3, 4))
        raw[-1] ^= 0x55
        with pytest.raises(PacketError):
            UdpDatagram.decode(bytes(raw), 3, 4)

    def test_bad_length_field(self):
        raw = bytearray(UdpDatagram(1, 2, b"abc").encode(0, 0))
        raw[4:6] = (3).to_bytes(2, "big")  # length < header size
        with pytest.raises(PacketError):
            UdpDatagram.decode(bytes(raw), 0, 0)


class TestFullStack:
    def test_build_and_parse(self):
        frame = build_udp_packet(parse_ip("1.2.3.4"), parse_ip("5.6.7.8"),
                                 1111, 2222, b"command")
        ip, udp = parse_udp_packet(frame)
        assert format_ip(ip.src_ip) == "1.2.3.4"
        assert udp.dst_port == 2222
        assert udp.payload == b"command"

    def test_non_udp_protocol_rejected(self):
        packet = Ipv4Packet(src_ip=1, dst_ip=2, payload=b"",
                            protocol=6)  # TCP
        with pytest.raises(PacketError):
            parse_udp_packet(packet.encode())

    @given(payload=st.binary(max_size=512),
           src_port=st.integers(0, 65535),
           dst_port=st.integers(0, 65535),
           src_ip=st.integers(0, 0xFFFFFFFF),
           dst_ip=st.integers(0, 0xFFFFFFFF))
    def test_roundtrip_property(self, payload, src_port, dst_port,
                                src_ip, dst_ip):
        frame = build_udp_packet(src_ip, dst_ip, src_port, dst_port, payload)
        ip, udp = parse_udp_packet(frame)
        assert (ip.src_ip, ip.dst_ip) == (src_ip, dst_ip)
        assert (udp.src_port, udp.dst_port) == (src_port, dst_port)
        assert udp.payload == payload

    @given(data=st.binary(min_size=1, max_size=128),
           flip=st.integers(min_value=0, max_value=10_000))
    def test_single_byte_corruption_always_detected(self, data, flip):
        """Either the IP header checksum or the UDP checksum catches any
        single corrupted byte."""
        frame = bytearray(build_udp_packet(0x01020304, 0x05060708,
                                           1000, 2000, data))
        index = flip % len(frame)
        if index in (26, 27):
            # Flipping the UDP checksum field itself can produce the
            # "checksum absent" encoding (0x0000), which RFC 768 defines
            # as unverified — not a detectable corruption by design.
            index = 28 if len(frame) > 28 else 0
        frame[index] ^= 0xA5
        with pytest.raises(PacketError):
            parse_udp_packet(bytes(frame))
