"""Chaos suite: the scripted fault harness, and every client command
driven to completion under each named scenario.

The device side is the hardware emulator (protocol-complete, no CPU
model), so each scenario run exercises the full control stack — tags,
retries, backoff, suppression — in milliseconds.
"""

import pytest

from repro.control import ChaosTransport, HardwareEmulator, LiquidClient
from repro.net.channel import ChannelConfig
from repro.net.faults import (
    SCENARIOS,
    FaultPhase,
    FaultPlan,
    ScriptedChannel,
    blackout,
    burst_loss,
    scenario,
    scripted_duplex,
)
from repro.net.protocol import LeonState
from repro.obs import MetricsRegistry

pytestmark = pytest.mark.chaos

DEVICE_IP = "128.252.153.2"
PORT = 2000
BASE = 0x4000_1000


def make_client(plan, seed=11, to_client_plan=None):
    emulator = HardwareEmulator(DEVICE_IP, PORT)
    transport = ChaosTransport(emulator, DEVICE_IP, PORT, plan,
                               to_client_plan=to_client_plan, seed=seed)
    return LiquidClient(transport), transport, emulator


def run_all_commands(client, emulator) -> dict:
    """The web interface's full command set: status, load, start, read
    memory, restart.  Returns a summary for determinism comparisons."""
    blob = bytes(range(256))
    assert client.status().state == LeonState.POLLING
    transmissions = client.load_binary(BASE, blob, chunk=32)
    started = client.start(BASE)
    assert started.entry == BASE
    offset = BASE - emulator.memory_base
    assert bytes(emulator.memory[offset:offset + len(blob)]) == blob
    assert client.read_memory(BASE + 8, 16) == blob[8:24]
    client.restart()
    assert client.status().state == LeonState.POLLING
    return {
        "transmissions": transmissions,
        "reliability": client.reliability_stats(),
        "console": client.listener.console_lines(),
    }


class TestFaultPlan:
    def test_phases_cycle_when_repeating(self):
        plan = burst_loss(period=4, burst=2)
        lossy = [plan.phase_at(r).config.loss > 0 for r in range(8)]
        assert lossy == [True, True, False, False] * 2

    def test_one_shot_plan_holds_last_phase(self):
        plan = blackout(before=2, duration=3)
        assert not plan.phase_at(0).blackout
        assert plan.phase_at(2).blackout
        assert plan.phase_at(4).blackout
        for r in range(5, 40):
            assert not plan.phase_at(r).blackout

    def test_plan_requires_phases(self):
        with pytest.raises(ValueError):
            FaultPlan("empty", ())

    def test_phase_requires_rounds(self):
        with pytest.raises(ValueError):
            FaultPhase(0)

    def test_scenario_lookup(self):
        assert scenario("burst-loss").name == "burst-loss"
        with pytest.raises(KeyError, match="unknown fault scenario"):
            scenario("meteor-strike")

    def test_registry_covers_the_documented_scenarios(self):
        assert {"burst-loss", "blackout", "duplicate-storm",
                "reorder-heavy", "device-down"} <= set(SCENARIOS)


class TestScriptedChannel:
    def test_blackout_drops_even_delayed_datagrams(self):
        # Round 0 delays the datagram past the boundary into the
        # blackout window, where it must be eaten, not delivered.
        plan = FaultPlan("edge", (
            FaultPhase(1, ChannelConfig(reorder=1.0, max_delay_slots=1)),
            FaultPhase(3, blackout=True),
            FaultPhase(1),
        ), repeat=False)
        channel = ScriptedChannel(plan, seed=5)
        channel.send(b"doomed")
        assert channel.deliver() == []       # delayed by reorder
        assert channel.deliver() == []       # due now, but blacked out
        assert channel.idle
        assert channel.blackout_dropped == 1
        assert channel.dropped == 1
        assert channel.stats()["blackout_dropped"] == 1

    def test_clean_phases_deliver_normally(self):
        channel = ScriptedChannel(blackout(before=2, duration=2), seed=1)
        channel.send(b"early")
        assert channel.deliver() == [b"early"]

    def test_scripted_channel_is_deterministic(self):
        def run(seed):
            channel = ScriptedChannel(scenario("reorder-heavy"), seed=seed)
            for i in range(50):
                channel.send(bytes([i]))
            out = []
            while not channel.idle:
                out.extend(channel.deliver())
            return out, channel.stats()

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_scripted_duplex_asymmetry(self):
        forward, back = scripted_duplex(scenario("blackout"), seed=2,
                                        return_plan=scenario("burst-loss"))
        assert forward.plan.name == "blackout"
        assert back.plan.name == "burst-loss"


#: Scenarios a retrying client can live through.  "device-down" is the
#: deliberate exception: a permanently black link that only a fleet
#: supervisor (rebuild + requeue) can survive.
SURVIVABLE = sorted(set(SCENARIOS) - {"device-down"})


class TestAllCommandsUnderChaos:
    """Acceptance: all five commands complete under every survivable
    scripted scenario with fixed seeds, byte-identical across reruns."""

    @pytest.mark.parametrize("name", SURVIVABLE)
    def test_full_command_set_completes(self, name):
        client, transport, emulator = make_client(scenario(name))
        summary = run_all_commands(client, emulator)
        assert client.timeouts == 0
        # The channels must actually have misbehaved (the blackout plan
        # shows up as blackout drops rather than random loss).
        stats = transport.channel_stats()
        faults = sum(stats[d][k] for d in stats
                     for k in ("dropped", "duplicated", "reordered",
                               "blackout_dropped"))
        assert faults > 0, f"scenario {name} injected nothing"
        assert summary["transmissions"] >= 8  # 256 B / 32 B chunks

    def test_device_down_times_out_every_command(self):
        # The hard-failure scenario: nothing ever gets through, so the
        # client must give up within its budget (the failure signal a
        # fleet supervisor converts into rebuild + requeue).
        from repro.control.client import ControlTimeout

        client, transport, emulator = make_client(scenario("device-down"))
        with pytest.raises(ControlTimeout):
            client.status()
        assert client.timeouts == 1
        assert transport.to_device.blackout_dropped > 0

    @pytest.mark.parametrize("name", SURVIVABLE)
    def test_rerun_is_byte_identical(self, name):
        def run():
            client, transport, emulator = make_client(scenario(name),
                                                      seed=23)
            summary = run_all_commands(client, emulator)
            summary["channels"] = transport.channel_stats()
            return summary

        assert run() == run()

    def test_asymmetric_direction_plans(self):
        # Clean uplink, duplicate-storm return path: requests always
        # arrive, every response is suppressed-duplicate fodder.
        client, transport, emulator = make_client(
            FaultPlan("clean", (FaultPhase(1),)),
            to_client_plan=scenario("duplicate-storm"))
        run_all_commands(client, emulator)
        assert transport.to_device.duplicated == 0
        assert transport.to_client.duplicated > 0
        assert client.duplicates_suppressed > 0

    def test_suppression_counters_surface_via_obs(self):
        client, transport, emulator = make_client(
            scenario("duplicate-storm"), seed=7)
        run_all_commands(client, emulator)
        registry = MetricsRegistry()
        client.publish_obs(registry)
        counters = registry.snapshot()["counters"]
        assert counters["client.timeouts"] == 0
        assert counters["client.duplicates_suppressed"] \
            == client.duplicates_suppressed
        assert counters["client.stale_suppressed"] \
            == client.stale_suppressed
        # The transport's channel accounting rides along.
        assert counters["channel.duplicated{direction=to_client}"] \
            == transport.to_client.duplicated

    def test_burst_loss_forces_retries(self):
        client, transport, emulator = make_client(
            burst_loss(period=5, burst=3, loss=1.0), seed=3)
        run_all_commands(client, emulator)
        assert client.retries > 0
        assert client.backoff_rounds > 0

    def test_blackout_recovers_after_outage(self):
        client, transport, emulator = make_client(
            blackout(before=1, duration=8), seed=9)
        summary = run_all_commands(client, emulator)
        assert (transport.to_device.blackout_dropped
                + transport.to_client.blackout_dropped) > 0
        assert summary["reliability"]["timeouts"] == 0
