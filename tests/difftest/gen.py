"""Seeded SPARC V8 program generator for the differential test suite.

Programs are built from self-contained *blocks* so a failing program can
be delta-debugged down to a minimal instruction listing: every block
carries its own labels (prefixed with the block's generation-time id)
and, when it calls subroutines, their definitions — removing any subset
of blocks still renders to a valid program.

The generated mix covers what the two execution engines must agree on:

* ALU traffic — logic/arithmetic/shift/tagged ops, flag-setting
  variants, ``mulscc`` and the multiply/divide unit (divisors are
  forced odd so division by zero stays a *trap-parity* concern, tested
  separately in ``test_trap_parity``);
* control transfers — every Bicc condition, with and without the annul
  bit, plus bounded counted loops;
* register windows — leaf calls (``save``/``restore``) and bounded
  recursion deep enough to take window overflow *and* underflow traps
  through the boot ROM's handlers;
* memory traffic — naturally aligned loads/stores of every width
  (``ldd``/``std`` with even register pairs) against a scratch area;
* MMIO side effects — UART transmit bytes (the byte stream is part of
  the differential contract), UART status reads, LED port writes and
  read-backs, cycle-counter reads;
* self-modifying code — hot loops that patch their own body or delay
  slot, exercising the fast engines' decode-memo and block-cache
  invalidation (and the translated engine's mid-block bail-out).

Register conventions: ``%g6`` holds the scratch-data base, ``%g7`` the
UART data-register address; ``%sp`` is set up for the window-trap
handlers.  Those three plus ``%o7``/``%fp`` are reserved — everything
else is fair game.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.mem.memmap import (
    APB_BASE,
    CYCLE_COUNTER_OFFSET,
    IOPORT_OFFSET,
    UART_OFFSET,
    DEFAULT_MAP,
)

#: %g7 points here; other APB registers are addressed relative to it.
UART_ADDR = APB_BASE + UART_OFFSET
LED_DELTA = IOPORT_OFFSET - UART_OFFSET
CYCLE_DELTA = CYCLE_COUNTER_OFFSET - UART_OFFSET

#: Scratch data area: well above any generated image, well below the
#: stack.
DATA_BASE = DEFAULT_MAP.program_base + 0x10000
DATA_SIZE = 0x1000

#: Registers the generator may freely read and write.  Reserved: %g0,
#: %g6 (data base), %g7 (UART base), %sp/%o6, %o7 (call linkage),
#: %fp/%i6, %i7 (window-trap linkage through recursion).
REG_POOL = (
    ["%g1", "%g2", "%g3", "%g4", "%g5"]
    + [f"%o{i}" for i in range(6)]
    + [f"%l{i}" for i in range(8)]
    + ["%i0", "%i1", "%i2", "%i3", "%i5"]
)
#: Even-numbered registers from the pool (ldd/std need an even rd).
EVEN_REGS = ["%g2", "%g4", "%o0", "%o2", "%o4", "%l0", "%l2", "%l4",
             "%l6", "%i0", "%i2"]

ALU_OPS = [
    "add", "addcc", "addx", "addxcc", "sub", "subcc", "subx", "subxcc",
    "and", "andcc", "andn", "andncc", "or", "orcc", "orn", "orncc",
    "xor", "xorcc", "xnor", "xnorcc", "taddcc", "tsubcc", "mulscc",
]
SHIFT_OPS = ["sll", "srl", "sra"]
MUL_OPS = ["umul", "smul", "umulcc", "smulcc"]
DIV_OPS = ["udiv", "sdiv", "udivcc", "sdivcc"]
BRANCHES = ["ba", "bn", "be", "bne", "bg", "ble", "bge", "bl", "bgu",
            "bleu", "bcc", "bcs", "bpos", "bneg", "bvc", "bvs"]
LOADS = ["ld", "ldub", "ldsb", "lduh", "ldsh"]
STORES = ["st", "stb", "sth"]


@dataclass
class Block:
    """One removable unit of a generated program."""

    body: list[str]
    #: Subroutine definitions this block calls; rendered after the
    #: epilogue so they are only reachable through the calls.
    funcs: list[str] = field(default_factory=list)


def _imm13(rng: random.Random) -> int:
    return rng.randint(-4096, 4095)


def _alu_op(rng: random.Random, pool=REG_POOL) -> str:
    kind = rng.random()
    rd = rng.choice(pool)
    rs1 = rng.choice(pool)
    if kind < 0.55:
        op = rng.choice(ALU_OPS)
        src = rng.choice(pool) if rng.random() < 0.5 else str(_imm13(rng))
        return f"    {op} {rs1}, {src}, {rd}"
    if kind < 0.8:
        op = rng.choice(SHIFT_OPS)
        src = (rng.choice(pool) if rng.random() < 0.3
               else str(rng.randint(0, 31)))
        return f"    {op} {rs1}, {src}, {rd}"
    op = rng.choice(MUL_OPS)
    return f"    {op} {rs1}, {rng.choice(pool)}, {rd}"


def _block_alu(rng: random.Random, uid: str) -> Block:
    return Block([_alu_op(rng) for _ in range(rng.randint(2, 6))])


def _block_div(rng: random.Random, uid: str) -> Block:
    """Multiply/divide with a forced-odd divisor and a clean %y."""
    rd, rs1, rs2 = (rng.choice(REG_POOL) for _ in range(3))
    body = [
        f"    wr %g0, 0, %y",
        f"    or {rs2}, 1, {rs2}",
        f"    {rng.choice(DIV_OPS)} {rs1}, {rs2}, {rd}",
    ]
    return Block(body)


def _block_branch(rng: random.Random, uid: str) -> Block:
    cond = rng.choice(BRANCHES)
    annul = ",a" if rng.random() < 0.4 else ""
    label = f"L{uid}_skip"
    body = [
        f"    cmp {rng.choice(REG_POOL)}, {rng.choice(REG_POOL)}",
        f"    {cond}{annul} {label}",
        _alu_op(rng),  # delay slot (annulled when the branch says so)
    ]
    body += [_alu_op(rng) for _ in range(rng.randint(1, 3))]
    body.append(f"{label}:")
    return Block(body)


def _block_loop(rng: random.Random, uid: str) -> Block:
    counter = rng.choice(REG_POOL)
    inner_pool = [r for r in REG_POOL if r != counter]
    label = f"L{uid}_top"
    body = [f"    set {rng.randint(1, 8)}, {counter}", f"{label}:"]
    body += [_alu_op(rng, inner_pool) for _ in range(rng.randint(1, 3))]
    body += [f"    deccc {counter}", f"    bg {label}", "    nop"]
    return Block(body)


def _block_mem(rng: random.Random, uid: str) -> Block:
    body = []
    for _ in range(rng.randint(2, 5)):
        if rng.random() < 0.2:  # doubleword pair
            reg = rng.choice(EVEN_REGS)
            offset = rng.randrange(0, DATA_SIZE - 8, 8)
            op = rng.choice(["std", "ldd"])
            if op == "std":
                body.append(f"    std {reg}, [%g6 + {offset}]")
            else:
                body.append(f"    ldd [%g6 + {offset}], {reg}")
            continue
        if rng.random() < 0.5:
            op = rng.choice(STORES)
            size = {"st": 4, "sth": 2, "stb": 1}[op]
            offset = rng.randrange(0, DATA_SIZE - size, size)
            body.append(f"    {op} {rng.choice(REG_POOL)}, [%g6 + {offset}]")
        else:
            op = rng.choice(LOADS)
            size = {"ld": 4, "lduh": 2, "ldsh": 2, "ldub": 1, "ldsb": 1}[op]
            offset = rng.randrange(0, DATA_SIZE - size, size)
            body.append(f"    {op} [%g6 + {offset}], {rng.choice(REG_POOL)}")
    return Block(body)


def _block_mmio(rng: random.Random, uid: str) -> Block:
    body = []
    for _ in range(rng.randint(1, 3)):
        which = rng.random()
        reg = rng.choice(REG_POOL)
        if which < 0.5:  # UART transmit — observable byte stream
            body.append(f"    stb {reg}, [%g7]")
        elif which < 0.65:  # UART status read (TX always empty)
            body.append(f"    ld [%g7 + 4], {reg}")
        elif which < 0.85:  # LED port write + read-back
            body.append(f"    st {reg}, [%g7 + {LED_DELTA}]")
            body.append(f"    ld [%g7 + {LED_DELTA}], {rng.choice(REG_POOL)}")
        else:  # cycle counter (never armed under the Simulator: reads 0)
            body.append(f"    ld [%g7 + {CYCLE_DELTA}], {reg}")
    return Block(body)


def _block_call(rng: random.Random, uid: str) -> Block:
    name = f"F{uid}"
    body = [f"    call {name}", "    nop"]
    inner = [_alu_op(rng, ["%l0", "%l1", "%l2", "%l3", "%i0", "%i1", "%i2"])
             for _ in range(rng.randint(2, 4))]
    funcs = [f"{name}:", "    save %sp, -96, %sp", *inner,
             "    ret", "    restore"]
    return Block(body, funcs)


def _block_recursion(rng: random.Random, uid: str, nwindows: int) -> Block:
    """Bounded recursion deep enough to overflow the register windows,
    driving the boot ROM's overflow/underflow handlers on both engines."""
    name = f"R{uid}"
    depth = rng.randint(2, nwindows + 4)
    body = [f"    set {depth}, %o0", f"    call {name}", "    nop"]
    funcs = [
        f"{name}:",
        "    save %sp, -96, %sp",
        "    subcc %i0, 1, %o0",
        f"    bg {name}_rec",
        "    nop",
        f"    ba {name}_done",
        "    nop",
        f"{name}_rec:",
        f"    call {name}",
        "    nop",
        f"{name}_done:",
        "    ret",
        "    restore",
    ]
    return Block(body, funcs)


def _block_smc(rng: random.Random, uid: str) -> Block:
    """Self-modifying code: a loop whose body (or delay slot) is
    patched while the loop is hot — after the fast engines have
    memoized the decode and translated the block.  Exercises the
    per-PC memo pop, block-cache page invalidation, and the
    active-block dirty bail-out."""
    addr_r, word_r, tgt_r, counter = rng.sample(
        ["%o0", "%o1", "%o2", "%o3", "%o4", "%l6", "%l7"], 4)
    acc = rng.choice(["%g1", "%g2", "%g3", "%g4", "%g5"])
    label = f"L{uid}"
    delta = rng.randint(2, 9)
    in_slot = rng.random() < 0.5
    body = [
        f"    set {label}_patch, {addr_r}",
        f"    ld [{addr_r}], {word_r}",
        f"    set {label}_target, {tgt_r}",
        f"    set {rng.randint(2, 5)}, {counter}",
        f"{label}_top:",
    ]
    # SPARC V8 requires FLUSH between storing code and executing it —
    # the accurate engine's icache only learns of the patch then (the
    # fast engines' memo/block invalidation is store-triggered, which
    # is strictly stronger, so all three engines agree after a flush).
    if in_slot:
        # patch the branch's delay slot mid-loop
        body += [
            f"    st {word_r}, [{tgt_r}]",
            f"    flush [{tgt_r}]",
            f"    deccc {counter}",
            f"    bg {label}_top",
            f"{label}_target:",
            f"    add {acc}, 1, {acc}",
        ]
    else:
        # patch a straight-line instruction inside the loop body
        body += [
            f"    st {word_r}, [{tgt_r}]",
            f"    flush [{tgt_r}]",
            f"{label}_target:",
            f"    add {acc}, 1, {acc}",
            f"    deccc {counter}",
            f"    bg {label}_top",
            "    nop",
        ]
    body += [
        f"    ba {label}_end",
        "    nop",
        f"{label}_patch:",
        f"    add {acc}, {delta}, {acc}",
        f"{label}_end:",
    ]
    return Block(body)


_BLOCK_KINDS = [
    (_block_alu, 0.26),
    (_block_branch, 0.16),
    (_block_loop, 0.12),
    (_block_mem, 0.16),
    (_block_mmio, 0.10),
    (_block_call, 0.08),
    (_block_div, 0.04),
    (_block_recursion, 0.04),
    (_block_smc, 0.04),
]


def generate_blocks(seed: int, nwindows: int = 8) -> list[Block]:
    """The seeded program body as a list of removable blocks."""
    rng = random.Random(seed)
    count = rng.randint(6, 14)
    blocks = []
    for i in range(count):
        pick, acc = rng.random(), 0.0
        for maker, weight in _BLOCK_KINDS:
            acc += weight
            if pick < acc:
                break
        uid = f"{seed}_{i}"
        if maker is _block_recursion:
            blocks.append(maker(rng, uid, nwindows))
        else:
            blocks.append(maker(rng, uid))
    return blocks


def render(blocks: list[Block], seed: int) -> str:
    """Blocks -> complete assembly source (prologue/epilogue fixed)."""
    # A string seed hashes deterministically (sha512) — a tuple would go
    # through salted hash() and vary across processes.
    rng = random.Random(f"prologue-{seed}")
    lines = [
        f"! difftest program, seed {seed}",
        "    .text",
        "    .global _start",
        "_start:",
        f"    set {DEFAULT_MAP.stack_top}, %sp",
        f"    set {DATA_BASE}, %g6",
        f"    set {UART_ADDR}, %g7",
    ]
    for reg in REG_POOL:
        lines.append(f"    set {rng.randint(0, 0xFFFFFFFF)}, {reg}")
    for block in blocks:
        lines.extend(block.body)
    result_reg = "%l0"
    lines += [
        f"    set {DEFAULT_MAP.result_addr}, %g1",
        f"    st {result_reg}, [%g1]",
        "    ta 0",
        "    nop",
    ]
    for block in blocks:
        if block.funcs:
            lines.extend(block.funcs)
    return "\n".join(lines) + "\n"


def generate(seed: int, nwindows: int = 8) -> str:
    """One seeded program, ready to assemble."""
    return render(generate_blocks(seed, nwindows), seed)


def shrink(blocks: list[Block], still_fails) -> list[Block]:
    """Delta-debug *blocks* to a locally minimal failing subset.

    *still_fails(blocks)* re-renders and re-runs the candidate; the
    result is 1-minimal — removing any single remaining block makes the
    failure disappear.  Chunked passes first (halves, then smaller) so
    large programs collapse quickly.
    """
    chunk = max(1, len(blocks) // 2)
    while chunk >= 1:
        i = 0
        while i < len(blocks):
            candidate = blocks[:i] + blocks[i + chunk:]
            if candidate and still_fails(candidate):
                blocks = candidate  # keep the removal, stay at this index
            else:
                i += chunk
        chunk //= 2
    return blocks
