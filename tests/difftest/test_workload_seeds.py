"""Registry workloads as differential seeds.

The fuzzer's generated programs cover the ISA corner-by-corner; the
workload registry covers it the way real programs do — long dependent
chains, recursion through the register windows, byte-granularity memory
traffic.  Every registry kernel must (a) run divergence-free on both
engines and (b) compute the answer its Python reference model predicts,
on both engines — so a workload seed failing here localizes to either
an engine bug (divergence) or a toolchain bug (both engines agree on
the wrong answer).
"""

from __future__ import annotations

import pytest

from repro.utils import u32
from repro.workloads import all_workloads, get
from tests.difftest.harness import compare_image

WINDOW_OVERFLOW_TT = 0x05
WINDOW_UNDERFLOW_TT = 0x06


def _ids():
    return [w.name for w in all_workloads()]


@pytest.mark.difftest
@pytest.mark.parametrize("workload", all_workloads(), ids=_ids())
def test_workload_engines_agree_and_self_check(workload):
    result = compare_image(workload.image(),
                           max_instructions=workload.max_instructions)
    assert result.ok, (
        f"{workload.name}: engines diverged:\n" + "\n".join(result.problems))
    expected = workload.expected()
    assert u32(result.accurate.result_word) == expected, (
        f"{workload.name}: accurate engine computed "
        f"{u32(result.accurate.result_word):#010x}, "
        f"reference model says {expected:#010x}")
    # result.ok already proved functional == accurate, so the reference
    # check transfers; assert anyway so a failure names both engines.
    assert u32(result.functional.result_word) == expected


@pytest.mark.difftest
def test_recursive_sort_exercises_window_traps():
    """Trap-parity spot check: the recursive quicksort must actually
    drive the register-window machinery — overflow on the way down,
    underflow on the way up — and still match across engines (which
    :func:`compare_image` proved, ArchState trap counts included)."""
    workload = get("qsort_rec")
    assert workload.takes_window_traps
    result = compare_image(workload.image(),
                           max_instructions=workload.max_instructions)
    assert result.ok, "\n".join(result.problems)
    taken = result.trap_types()
    assert WINDOW_OVERFLOW_TT in taken, (
        f"qsort_rec never overflowed a window (traps seen: {taken})")
    assert WINDOW_UNDERFLOW_TT in taken, (
        f"qsort_rec never underflowed a window (traps seen: {taken})")
    # Deep recursion, not a one-off: multiple spills each way.
    overflows = sum(1 for tt, _pc in result.traps
                    if tt == WINDOW_OVERFLOW_TT)
    assert overflows >= 2
