"""Self-modifying code under translation: deterministic difftest
programs that store into already-translated blocks and delay slots.

The randomized suite now generates SMC blocks too (``gen._block_smc``);
these pinned programs keep the three interesting shapes covered even at
small seed counts: patching a hot loop body, patching a delay slot, and
a block that patches an instruction *ahead of itself* so the translated
engine must bail out of the active block.  Every program is compared
byte-identical across all three engines (accurate, functional,
translated) through the shared harness.
"""

from __future__ import annotations

import pytest

from tests.difftest import gen
from tests.difftest.harness import compare_engines

pytestmark = pytest.mark.difftest

PROLOGUE = """
    .text
    .global _start
_start:
    set 0x40170000, %sp
    set 0x40011000, %g6
"""
EPILOGUE = """
    set 0x40010000, %g1
    st %l0, [%g1]
    ta 0
    nop
"""


def _check(body: str) -> None:
    problems = compare_engines(PROLOGUE + body + EPILOGUE)
    assert not problems, "\n".join(problems)


def test_patch_into_translated_loop_body():
    """By the second iteration the loop is translated; the store must
    invalidate the block and the third iteration must run new code."""
    _check("""
    set patch, %o0
    ld [%o0], %o1
    set target, %o2
    set 4, %o3
    mov 0, %l0
top:
    deccc %o3
target:
    add %l0, 1, %l0         ! becomes add %l0, 5 once patched
    st %o1, [%o2]
    flush [%o2]             ! V8 contract: flush before executing patched code
    bg top
    nop
    ba join
    nop
patch:
    add %l0, 5, %l0
join:
""")


def test_patch_into_translated_delay_slot():
    """The patched instruction sits in an annul-capable delay slot of
    an already-translated branch."""
    _check("""
    set patch, %o0
    ld [%o0], %o1
    set slot, %o2
    set 4, %o3
    mov 0, %l0
top:
    st %o1, [%o2]
    flush [%o2]
    deccc %o3
    bg,a top
slot:
    add %l0, 1, %l0         ! becomes add %l0, 7 once patched
    ba join
    nop
patch:
    add %l0, 7, %l0
join:
""")


def test_block_patches_ahead_of_itself():
    """A single straight-line block stores over one of its *own* later
    instructions — the translated engine must observe its own write
    (mid-block bail-out) the very first time through."""
    _check("""
    ba go
    nop
patch:
    add %l0, 9, %l0
go:
    set patch, %o0
    ld [%o0], %o1
    set target, %o2
    mov 0, %l0
    st %o1, [%o2]           ! patches an instruction below, same block
    flush [%o2]
    add %l0, 1, %l0
target:
    add %l0, 1, %l0         ! becomes add %l0, 9
    add %l0, 1, %l0
""")


def test_generated_smc_blocks_match():
    """A focused sweep of generator-built SMC blocks (both the loop-body
    and delay-slot shapes appear across these seeds)."""
    smc_seen = 0
    for seed in range(40):
        rng_blocks = gen.generate_blocks(seed)
        text = gen.render(rng_blocks, seed)
        if "_patch" not in text:
            continue
        smc_seen += 1
        problems = compare_engines(text)
        assert not problems, f"seed {seed}:\n" + "\n".join(problems)
    assert smc_seen > 0, "no SMC blocks in the first 40 seeds"
