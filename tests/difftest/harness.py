"""Differential harness: run one program on every execution engine and
compare everything the architecture defines.

A program passes when the cycle-accurate :class:`IntegerUnit`, the
functional :class:`FunctionalUnit` and the block-translating
:class:`TranslatedUnit` all finish with equal
:class:`~repro.cpu.archstate.ArchState` (registers in every window,
control registers, the full memory image, peripheral state, retired
instruction and trap counts) *and* the same UART byte stream and result
word.  Any divergence is an engine bug by construction — the engines
share decode and execute, so only the parts that differ (fetch/memory
path, timing shims, block translation) can be at fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sim import SimReport, Simulator
from repro.cpu.archstate import ArchState
from repro.toolchain.driver import SourceFile, build_image

#: Generated programs are short; this bounds runaway loops/recursion.
MAX_INSTRUCTIONS = 2_000_000


def build(asm_text: str):
    return build_image([SourceFile(asm_text, "asm", "difftest.s")],
                       with_crt0=False, entry_symbol="_start")


@dataclass
class DiffResult:
    """One differential run: mismatch list plus every engine's report.

    ``traps`` logs every (tt, pc) the cycle-accurate engine took — the
    fast engines' trap *counts* are already proven equal through the
    ArchState comparison, so one engine's log describes all of them.
    """

    problems: list[str]
    accurate: SimReport
    functional: SimReport
    translated: SimReport | None = None
    traps: list[tuple[int, int]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def trap_types(self) -> set[int]:
        return {tt for tt, _pc in self.traps}


def compare_image(image, max_instructions: int = MAX_INSTRUCTIONS
                  ) -> DiffResult:
    """Run a built image on every engine; compare each fast engine's
    result against the one cycle-accurate baseline run."""
    accurate = Simulator(capture_memory_trace=False, obs=False)
    traps: list[tuple[int, int]] = []
    accurate.cpu.on_trap = lambda tt, pc: traps.append((tt, pc))
    report_a = accurate.run(image, max_instructions=max_instructions)
    state_a = ArchState.capture(accurate)

    problems = []
    functional = Simulator(capture_memory_trace=False, obs=False)
    report_f = functional.run_functional(image,
                                         max_instructions=max_instructions)
    problems += _compare(state_a, report_a, functional, report_f,
                         "functional")
    translated = Simulator(capture_memory_trace=False, obs=False)
    report_t = translated.run_translated(image,
                                         max_instructions=max_instructions)
    problems += _compare(state_a, report_a, translated, report_t,
                         "translated")
    return DiffResult(problems, report_a, report_f, report_t, traps)


def compare_engines(asm_text: str) -> list[str]:
    """Run on every engine; return mismatch descriptions (empty = pass)."""
    return compare_image(build(asm_text)).problems


def _compare(state_a: ArchState, report_a: SimReport, sim: Simulator,
             report: SimReport, label: str) -> list[str]:
    problems = []
    state = ArchState.capture(sim)
    if state_a != state:
        problems.extend(_describe_state_diff(state_a, state, label))
    if report_a.uart_output != report.uart_output:
        problems.append(
            f"uart: accurate={report_a.uart_output.hex()} "
            f"{label}={report.uart_output.hex()}")
    if report_a.result_word != report.result_word:
        problems.append(
            f"result_word: accurate={report_a.result_word} "
            f"{label}={report.result_word}")
    return problems


def _describe_state_diff(a: ArchState, b: ArchState,
                         label: str = "functional") -> list[str]:
    diffs = []
    for name in ("pc", "npc", "annul", "halted", "error_tt", "psr", "wim",
                 "tbr", "y", "cwp", "retired", "traps_taken"):
        va, vb = getattr(a, name), getattr(b, name)
        if va != vb:
            diffs.append(f"{name}: accurate={va} {label}={vb}")
    if a.globals_ != b.globals_:
        for i, (va, vb) in enumerate(zip(a.globals_, b.globals_)):
            if va != vb:
                diffs.append(f"%g{i}: accurate={va:#x} {label}={vb:#x}")
    if a.window_regs != b.window_regs:
        for i, (va, vb) in enumerate(zip(a.window_regs, b.window_regs)):
            if va != vb:
                diffs.append(
                    f"window slot {i}: accurate={va:#x} {label}={vb:#x}")
    if a.asr != b.asr:
        diffs.append(f"asr: accurate={a.asr} {label}={b.asr}")
    for name in set(a.memory) | set(b.memory):
        blob_a, blob_b = a.memory.get(name), b.memory.get(name)
        if blob_a != blob_b:
            where = next(i for i, (x, y)
                         in enumerate(zip(blob_a, blob_b)) if x != y)
            diffs.append(f"memory '{name}' first differs at +{where:#x}")
    for name in set(a.peripherals) | set(b.peripherals):
        if a.peripherals.get(name) != b.peripherals.get(name):
            diffs.append(
                f"peripheral '{name}': accurate={a.peripherals.get(name)} "
                f"{label}={b.peripherals.get(name)}")
    return diffs or [f"ArchState differs (unattributed field, {label})"]
