"""Differential harness: run one program on both execution engines and
compare everything the architecture defines.

A program passes when the cycle-accurate :class:`IntegerUnit` and the
functional :class:`FunctionalUnit` finish with equal
:class:`~repro.cpu.archstate.ArchState` (registers in every window,
control registers, the full memory image, peripheral state, retired
instruction and trap counts) *and* the same UART byte stream and result
word.  Any divergence is an engine bug by construction — the two share
decode and execute, so only the parts that differ (fetch/memory path,
timing shims) can be at fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sim import SimReport, Simulator
from repro.cpu.archstate import ArchState
from repro.toolchain.driver import SourceFile, build_image

#: Generated programs are short; this bounds runaway loops/recursion.
MAX_INSTRUCTIONS = 2_000_000


def build(asm_text: str):
    return build_image([SourceFile(asm_text, "asm", "difftest.s")],
                       with_crt0=False, entry_symbol="_start")


@dataclass
class DiffResult:
    """One differential run: mismatch list plus both engines' reports.

    ``traps`` logs every (tt, pc) the cycle-accurate engine took — the
    functional engine's trap *count* is already proven equal through the
    ArchState comparison, so one engine's log describes both.
    """

    problems: list[str]
    accurate: SimReport
    functional: SimReport
    traps: list[tuple[int, int]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def trap_types(self) -> set[int]:
        return {tt for tt, _pc in self.traps}


def compare_image(image, max_instructions: int = MAX_INSTRUCTIONS
                  ) -> DiffResult:
    """Run a built image on both engines and compare everything."""
    accurate = Simulator(capture_memory_trace=False, obs=False)
    traps: list[tuple[int, int]] = []
    accurate.cpu.on_trap = lambda tt, pc: traps.append((tt, pc))
    report_a = accurate.run(image, max_instructions=max_instructions)
    functional = Simulator(capture_memory_trace=False, obs=False)
    report_f = functional.run_functional(image,
                                         max_instructions=max_instructions)

    problems = []
    state_a = ArchState.capture(accurate)
    state_f = ArchState.capture(functional)
    if state_a != state_f:
        problems.extend(_describe_state_diff(state_a, state_f))
    if report_a.uart_output != report_f.uart_output:
        problems.append(
            f"uart: accurate={report_a.uart_output.hex()} "
            f"functional={report_f.uart_output.hex()}")
    if report_a.result_word != report_f.result_word:
        problems.append(
            f"result_word: accurate={report_a.result_word} "
            f"functional={report_f.result_word}")
    return DiffResult(problems, report_a, report_f, traps)


def compare_engines(asm_text: str) -> list[str]:
    """Run on both engines; return mismatch descriptions (empty = pass)."""
    return compare_image(build(asm_text)).problems


def _describe_state_diff(a: ArchState, b: ArchState) -> list[str]:
    diffs = []
    for name in ("pc", "npc", "annul", "halted", "error_tt", "psr", "wim",
                 "tbr", "y", "cwp", "retired", "traps_taken"):
        va, vb = getattr(a, name), getattr(b, name)
        if va != vb:
            diffs.append(f"{name}: accurate={va} functional={vb}")
    if a.globals_ != b.globals_:
        for i, (va, vb) in enumerate(zip(a.globals_, b.globals_)):
            if va != vb:
                diffs.append(f"%g{i}: accurate={va:#x} functional={vb:#x}")
    if a.window_regs != b.window_regs:
        for i, (va, vb) in enumerate(zip(a.window_regs, b.window_regs)):
            if va != vb:
                diffs.append(
                    f"window slot {i}: accurate={va:#x} functional={vb:#x}")
    if a.asr != b.asr:
        diffs.append(f"asr: accurate={a.asr} functional={b.asr}")
    for name in set(a.memory) | set(b.memory):
        blob_a, blob_b = a.memory.get(name), b.memory.get(name)
        if blob_a != blob_b:
            where = next(i for i, (x, y)
                         in enumerate(zip(blob_a, blob_b)) if x != y)
            diffs.append(f"memory '{name}' first differs at +{where:#x}")
    for name in set(a.peripherals) | set(b.peripherals):
        if a.peripherals.get(name) != b.peripherals.get(name):
            diffs.append(
                f"peripheral '{name}': accurate={a.peripherals.get(name)} "
                f"functional={b.peripherals.get(name)}")
    return diffs or ["ArchState differs (unattributed field)"]
