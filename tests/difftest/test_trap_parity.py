"""Trap parity: every TrapException site behaves identically on all
three engines (accurate, functional, translated), including the TBR
dispatch into the boot ROM's trap table.

Unhandled traps park the machine at the ROM's ``error_state`` loop with
ET = 0 and the trap type still latched in TBR — so driving both engines
to ``rom_info.error_address`` and comparing the full
:class:`~repro.cpu.archstate.ArchState` (which includes TBR, PSR, and
the trap window's ``%l1``/``%l2`` = trapped PC/nPC) proves the whole
entry sequence matched.  Window overflow/underflow are *handled* by the
ROM, so those run to normal completion instead.
"""

from __future__ import annotations

import pytest

from repro.core.sim import Simulator
from repro.cpu.archstate import ArchState
from tests.difftest.harness import build, compare_engines

pytestmark = pytest.mark.difftest

PROLOGUE = """
    .text
    .global _start
_start:
    set 0x40170000, %sp
    set 0x40011000, %g6
"""
EPILOGUE = """
    ta 0
    nop
"""


def _run_to_error(asm_text: str, engine_kind: str):
    """Boot, dispatch, run until the machine parks at error_state."""
    image = build(asm_text)
    sim = Simulator(capture_memory_trace=False, obs=False)
    engine = sim._boot_and_dispatch(image, engine_kind)
    engine.run(max_instructions=500_000,
               until_pc=sim.rom_info.error_address)
    if engine is not sim.cpu:
        sim._sync_from_functional(engine)
    return ArchState.capture(sim)


#: (name, trapping body, expected 8-bit trap type).
ERROR_CASES = [
    ("ld_unaligned", "    ld [%g6 + 2], %g1", 0x07),
    ("st_unaligned", "    st %g1, [%g6 + 1]", 0x07),
    ("lduh_unaligned", "    lduh [%g6 + 1], %g1", 0x07),
    ("ldd_unaligned", "    ldd [%g6 + 4], %g2", 0x07),
    ("illegal_unimp", "    unimp 0", 0x02),
    ("illegal_ldd_odd_rd", "    .word 0xc21b8000", 0x02),  # ldd rd=%g1
    ("illegal_wrpsr_bad_cwp", "    wr %g0, 31, %psr", 0x02),
    ("division_by_zero", "    udiv %g1, %g0, %g2", 0x2A),
    ("software_trap_5", "    ta 5", 0x85),
]


@pytest.mark.parametrize("body,expected_tt",
                         [case[1:] for case in ERROR_CASES],
                         ids=[case[0] for case in ERROR_CASES])
def test_unhandled_trap_parity(body, expected_tt):
    asm = PROLOGUE + body + "\n" + EPILOGUE
    accurate = _run_to_error(asm, "accurate")
    functional = _run_to_error(asm, "fast")
    translated = _run_to_error(asm, "translated")
    assert (accurate.tbr >> 4) & 0xFF == expected_tt
    assert accurate == functional
    assert accurate == translated
    # the error loop head is where both machines parked
    assert accurate.pc == functional.pc == translated.pc
    # trap entry disabled further traps and stayed there
    assert not accurate.psr & (1 << 5)  # PSR.ET


@pytest.mark.parametrize("depth", [2, 9, 12])
def test_window_trap_parity(depth):
    """Recursion past NWINDOWS drives the ROM's overflow handler on the
    way down and the underflow handler on the way up — both engines must
    take the same trap count and land in the same state."""
    asm = PROLOGUE + f"""
    set {depth}, %o0
    call recurse
    nop
""" + EPILOGUE + """
recurse:
    save %sp, -96, %sp
    subcc %i0, 1, %o0
    bg deeper
    nop
    ba unwind
    nop
deeper:
    call recurse
    nop
unwind:
    ret
    restore
"""
    problems = compare_engines(asm)
    assert not problems, "\n".join(problems)

    # prove the deep case actually trapped: run accurately and count
    image = build(asm)
    sim = Simulator(capture_memory_trace=False, obs=False)
    sim.run(image)
    state = ArchState.capture(sim)
    if depth > sim.config.nwindows:
        # at least one overflow and one underflow beyond the exit trap
        assert state.traps_taken >= 3
