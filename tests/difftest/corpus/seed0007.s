! regression corpus: representative program, seed 7
! multiply/divide unit with %y setup
! replayed by test_corpus_replays on every run
! difftest program, seed 7
    .text
    .global _start
_start:
    set 1075838848, %sp
    set 1073811456, %g6
    set 2147483760, %g7
    set 3522807625, %g1
    set 259161490, %g2
    set 1414995440, %g3
    set 1400358789, %g4
    set 3490621092, %g5
    set 1876001825, %o0
    set 3067164726, %o1
    set 3828070507, %o2
    set 1329644262, %o3
    set 2079370739, %o4
    set 4187804244, %o5
    set 1815630171, %l0
    set 4007093915, %l1
    set 85451517, %l2
    set 382576753, %l3
    set 2769667482, %l4
    set 1821867176, %l5
    set 1423008359, %l6
    set 1547139803, %l7
    set 298370542, %i0
    set 2296274677, %i1
    set 1212662561, %i2
    set 3911646471, %i3
    set 3508430798, %i5
    wr %g0, 0, %y
    or %g2, 1, %g2
    udiv %i1, %g2, %l1
    stb %g2, [%g7]
    call F7_2
    nop
    set 1, %l1
L7_3_top:
    orcc %o4, %g4, %g5
    deccc %l1
    bg L7_3_top
    nop
    set 3, %l6
L7_4_top:
    srl %o1, %i5, %i2
    deccc %l6
    bg L7_4_top
    nop
    sra %i2, 20, %l4
    andcc %l0, %o0, %l3
    ldd [%g6 + 2144], %o4
    ldsb [%g6 + 2494], %g3
    ldd [%g6 + 672], %l2
    xorcc %g3, 1044, %i2
    orncc %i0, 3378, %l0
    orncc %o3, -3032, %g3
    taddcc %o4, 3205, %i3
    andncc %i2, %l3, %l1
    cmp %o1, %o4
    bne L7_8_skip
    or %l1, 4038, %o2
    and %l6, 2957, %l1
L7_8_skip:
    call F7_9
    nop
    sub %o5, -3212, %l7
    or %l6, %l1, %i2
    addcc %l1, %o1, %i1
    xnorcc %o5, %g1, %g4
    srl %g4, 4, %l6
    smul %l1, %i1, %i0
    set 1073741832, %g1
    st %l0, [%g1]
    ta 0
    nop
F7_2:
    save %sp, -96, %sp
    addx %l3, %i0, %l3
    addxcc %i0, -3083, %i2
    ret
    restore
F7_9:
    save %sp, -96, %sp
    srl %i1, 9, %l2
    tsubcc %l1, %l3, %l1
    umulcc %l2, %l0, %l1
    ret
    restore
