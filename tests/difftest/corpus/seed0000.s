! regression corpus: representative program, seed 0
! register windows: recursion past NWINDOWS, calls, loops, MMIO
! replayed by test_corpus_replays on every run
! difftest program, seed 0
    .text
    .global _start
_start:
    set 1075838848, %sp
    set 1073811456, %g6
    set 2147483760, %g7
    set 3545250317, %g1
    set 3487067065, %g2
    set 933503259, %g3
    set 914218366, %g4
    set 4163970415, %g5
    set 2982557224, %o0
    set 996734405, %o1
    set 2324617517, %o2
    set 843916758, %o3
    set 1685386453, %o4
    set 1391875955, %o5
    set 4185341775, %l0
    set 2612907801, %l1
    set 3010592402, %l2
    set 1687861787, %l3
    set 3422047538, %l4
    set 4150369506, %l5
    set 2026051832, %l6
    set 1697423473, %l7
    set 1633336131, %i0
    set 2069841139, %i1
    set 3013161169, %i2
    set 3299923665, %i3
    set 29285966, %i5
    stb %l5, [%g7]
    stb %o4, [%g7]
    set 7, %o0
    call R0_1
    nop
    st %o3, [%g6 + 2532]
    ldsh [%g6 + 3694], %g5
    ldsb [%g6 + 1933], %l6
    xorcc %o1, %l5, %i1
    addx %g1, 2438, %l6
    sll %i1, 21, %i2
    addx %i3, %l7, %o5
    orn %l6, %o5, %g5
    call F0_4
    nop
    orncc %o3, %i2, %i2
    sll %g2, 25, %g5
    smul %o3, %o1, %l5
    call F0_6
    nop
    smul %g5, %g2, %g4
    umul %l6, %g1, %i1
    xnor %i0, %g3, %o1
    xnorcc %g2, %o0, %g4
    sra %o1, 1, %l4
    set 2, %i0
L0_8_top:
    andcc %i2, %o0, %g3
    xnorcc %g2, %l1, %l3
    deccc %i0
    bg L0_8_top
    nop
    smul %l7, %i3, %l4
    sll %i2, 21, %g2
    orn %i0, -3880, %g4
    xor %l7, 1755, %l2
    cmp %i3, %g1
    bgu,a L0_10_skip
    addcc %o5, -1887, %g3
    sra %l0, %l0, %l4
L0_10_skip:
    stb %i1, [%g6 + 3395]
    ldd [%g6 + 784], %i0
    ldd [%g6 + 2608], %o2
    set 1073741832, %g1
    st %l0, [%g1]
    ta 0
    nop
R0_1:
    save %sp, -96, %sp
    subcc %i0, 1, %o0
    bg R0_1_rec
    nop
    ba R0_1_done
    nop
R0_1_rec:
    call R0_1
    nop
R0_1_done:
    ret
    restore
F0_4:
    save %sp, -96, %sp
    mulscc %l2, %l2, %i0
    umulcc %l1, %l3, %i0
    andn %l3, 660, %i2
    ret
    restore
F0_6:
    save %sp, -96, %sp
    umulcc %i0, %l3, %l3
    andncc %i1, %i0, %i1
    andn %i1, -115, %i0
    mulscc %l0, %i2, %l2
    ret
    restore
