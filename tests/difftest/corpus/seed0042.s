! regression corpus: representative program, seed 42
! broad ALU/branch/memory mix
! replayed by test_corpus_replays on every run
! difftest program, seed 42
    .text
    .global _start
_start:
    set 1075838848, %sp
    set 1073811456, %g6
    set 2147483760, %g7
    set 4223534803, %g1
    set 740870614, %g2
    set 2325103903, %g3
    set 171490704, %g4
    set 3814202139, %g5
    set 4216890743, %o0
    set 3650604258, %o1
    set 992510248, %o2
    set 3515393856, %o3
    set 1708410302, %o4
    set 2132712779, %o5
    set 3368528203, %l0
    set 395359080, %l1
    set 458502570, %l2
    set 2067600710, %l3
    set 495463992, %l4
    set 62569641, %l5
    set 2820632142, %l6
    set 1147694708, %l7
    set 3697666958, %i0
    set 2706489647, %i1
    set 1157215753, %i2
    set 194125845, %i3
    set 1138151639, %i5
    addxcc %i5, -2672, %g5
    sll %g1, %l5, %g2
    sra %o1, 26, %l6
    add %o3, -1481, %l7
    stb %g3, [%g6 + 418]
    stb %o3, [%g6 + 2472]
    ldsh [%g6 + 510], %l1
    ldd [%g6 + 3392], %o4
    set 2, %i3
L42_2_top:
    sll %g3, 24, %o4
    deccc %i3
    bg L42_2_top
    nop
    tsubcc %o1, %i2, %l0
    sll %i1, 15, %i0
    taddcc %o3, -498, %l1
    sll %o2, 25, %g2
    umulcc %i3, %o1, %l7
    srl %i1, %g5, %l1
    and %l6, 2923, %l6
    call F42_5
    nop
    set 1, %l6
L42_6_top:
    srl %l7, 21, %i3
    orn %o0, %o3, %l2
    umul %l5, %i2, %o0
    deccc %l6
    bg L42_6_top
    nop
    set 1073741832, %g1
    st %l0, [%g1]
    ta 0
    nop
F42_5:
    save %sp, -96, %sp
    orncc %i0, %l0, %l1
    smul %i1, %i2, %l1
    srl %l0, 29, %i0
    ret
    restore
