"""Randomized differential test: functional engine vs cycle-accurate.

Every seeded program must finish with an identical architectural state
(registers in all windows, control registers, memory, peripherals,
retired/trap counts) and an identical UART byte stream on both engines.
A failing seed is delta-debugged down to a minimal block listing, which
is written into ``corpus/`` — commit that file so the bug stays covered
forever (``test_corpus_replays`` re-runs every committed listing).

``DIFFTEST_PROGRAMS`` scales the randomized set (default 200 seeds);
CI runs the default set on every push and a larger one on the main
branch.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from tests.difftest import gen
from tests.difftest.harness import compare_engines

pytestmark = pytest.mark.difftest

PROGRAMS = int(os.environ.get("DIFFTEST_PROGRAMS", "200"))
CHUNKS = 20
CORPUS = pathlib.Path(__file__).parent / "corpus"


def _seeds_for(chunk: int) -> range:
    per = (PROGRAMS + CHUNKS - 1) // CHUNKS
    return range(chunk * per, min((chunk + 1) * per, PROGRAMS))


def _shrink_and_record(seed: int, problems: list[str]) -> str:
    """Minimize the failing seed and write the listing into corpus/."""
    blocks = gen.generate_blocks(seed)

    def still_fails(candidate):
        return bool(compare_engines(gen.render(candidate, seed)))

    minimal = gen.shrink(blocks, still_fails)
    listing = gen.render(minimal, seed)
    CORPUS.mkdir(exist_ok=True)
    path = CORPUS / f"shrunk_seed{seed}.s"
    header = "".join(f"! {line}\n" for line in [
        f"shrunk from seed {seed} "
        f"({len(blocks)} blocks -> {len(minimal)})",
        "engines diverged:", *problems,
    ])
    path.write_text(header + listing)
    return str(path)


@pytest.mark.slow
@pytest.mark.parametrize("chunk", range(CHUNKS))
def test_generated_programs_match(chunk):
    for seed in _seeds_for(chunk):
        problems = compare_engines(gen.generate(seed))
        if problems:
            path = _shrink_and_record(seed, problems)
            pytest.fail(
                f"seed {seed}: engines diverged:\n  "
                + "\n  ".join(problems)
                + f"\nshrunk listing written to {path} — commit it "
                f"to the regression corpus")


@pytest.mark.parametrize(
    "listing",
    sorted(CORPUS.glob("*.s"), key=lambda p: p.name) or
    [pytest.param(None, marks=pytest.mark.skip(reason="corpus empty"))],
    ids=lambda p: p.name if p else "empty")
def test_corpus_replays(listing):
    """Every committed corpus listing stays engine-identical."""
    problems = compare_engines(listing.read_text())
    assert not problems, (
        f"{listing.name} diverged again:\n  " + "\n  ".join(problems))


def test_generator_is_deterministic():
    """Same seed, same program — across calls and across processes
    (string-seeded RNG, no salted hashing anywhere)."""
    assert gen.generate(1234) == gen.generate(1234)
    blocks = gen.generate_blocks(1234)
    assert gen.render(blocks, 1234) == gen.generate(1234)


def test_generated_programs_cover_the_mix():
    """The default seed set exercises every block family the generator
    knows — otherwise the differential suite silently loses coverage."""
    text = "".join(gen.generate(seed) for seed in range(50))
    for marker in ("call F", "call R", "udiv", "sdiv", "stb", "ldd",
                   "std", "deccc", "ta 0", "[%g7]", "_patch"):
        assert marker in text, f"mix lost '{marker}' blocks"


def test_shrinker_is_one_minimal():
    """ddmin on a synthetic predicate: failure iff blocks 3 AND 7 are
    both present must shrink to exactly those two blocks."""
    blocks = gen.generate_blocks(99)
    assert len(blocks) >= 8
    culprits = {id(blocks[3]), id(blocks[7])}

    def still_fails(candidate):
        return culprits <= {id(b) for b in candidate}

    minimal = gen.shrink(blocks, still_fails)
    assert {id(b) for b in minimal} == culprits
