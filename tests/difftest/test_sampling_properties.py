"""Conservation property: sampled runs partition generated programs.

Hypothesis draws seeded difftest programs (the same generator the
engine-differential suite uses) plus random sampling plans, and checks
the books balance exactly: the phase ledger's retired-instruction
counts sum to the full-run retired count measured by an *independent*
cycle-accurate execution, its step counts tile ``[0, total_steps)``
with no gaps or overlaps, and the architectural outputs (RESULT word,
UART byte stream) match the accurate run's.  Any imbalance means a
checkpoint restored into the wrong position or a window measured the
wrong span — silent corruptions a CPI comparison would paper over.

``derandomize=True`` keeps the drawn corpus identical across CI and
local runs.  A failing draw is written as a full assembly listing into
``corpus/`` so ``test_corpus_replays`` keeps covering it once
committed.
"""

from __future__ import annotations

import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sampling import SampledRunner, SamplingPlan
from repro.core.sim import Simulator
from tests.difftest import gen
from tests.difftest.harness import MAX_INSTRUCTIONS, build

pytestmark = [pytest.mark.difftest, pytest.mark.sampling]

CORPUS = pathlib.Path(__file__).parent / "corpus"

plans = st.builds(
    SamplingPlan,
    n_windows=st.integers(min_value=1, max_value=12),
    window_length=st.sampled_from([50, 200, 1000, 100_000]),
    ramp_length=st.sampled_from([0, 64, 512]),
    seed=st.integers(min_value=0, max_value=999),
)


def _record_failure(program_seed: int, plan: SamplingPlan,
                    problem: str) -> pathlib.Path:
    listing = gen.render(gen.generate_blocks(program_seed), program_seed)
    CORPUS.mkdir(exist_ok=True)
    path = CORPUS / f"shrunk_sampling_seed{program_seed}.s"
    header = (f"! sampling conservation failure, program seed "
              f"{program_seed}\n"
              f"! plan: {plan}\n"
              f"! {problem}\n")
    path.write_text(header + listing)
    return path


@given(program_seed=st.integers(min_value=0, max_value=2**16 - 1),
       plan=plans)
@settings(max_examples=10, deadline=None, derandomize=True)
def test_phases_conserve_instructions_and_steps(program_seed, plan):
    image = build(gen.render(gen.generate_blocks(program_seed),
                             program_seed))

    accurate = Simulator(capture_memory_trace=False).run(
        image, max_instructions=MAX_INSTRUCTIONS)
    run = SampledRunner().run(image, plan,
                              max_instructions=MAX_INSTRUCTIONS)

    problems = []
    if sum(p["instructions"] for p in run.phases) != accurate.instructions:
        problems.append(
            f"phase instructions sum "
            f"{sum(p['instructions'] for p in run.phases)} != full-run "
            f"retired count {accurate.instructions}")
    if run.total_instructions != accurate.instructions:
        problems.append(
            f"survey retired count {run.total_instructions} != accurate "
            f"retired count {accurate.instructions}")
    position = 0
    for phase in run.phases:
        if phase["start"] != position:
            problems.append(
                f"phase {phase} starts at {phase['start']}, expected "
                f"{position}")
            break
        position = phase["end"]
    else:
        if position != run.total_steps:
            problems.append(
                f"phases end at {position}, total_steps is "
                f"{run.total_steps}")
    if run.result_word != accurate.result_word:
        problems.append(
            f"RESULT {run.result_word!r} != accurate "
            f"{accurate.result_word!r}")
    if run.uart_hex != accurate.uart_output.hex():
        problems.append("UART byte streams diverge")

    if problems:
        path = _record_failure(program_seed, plan, "; ".join(problems))
        pytest.fail("\n".join(problems) +
                    f"\nlisting written to {path} — commit it to the "
                    f"regression corpus")
