"""AHB bus tests: decoding, cycle accounting, bursts, errors."""

import pytest

from repro.bus.ahb import AhbBus, AhbConfig
from repro.mem.interface import BusError
from repro.mem.sram import SramBank


def make_bus(**config):
    bus = AhbBus(AhbConfig(**config)) if config else AhbBus()
    sram = SramBank(0x4000_0000, 0x10000)
    bus.attach(sram, 0x4000_0000, 0x10000, "sram")
    return bus, sram


class TestDecoding:
    def test_read_write_roundtrip(self):
        bus, _ = make_bus()
        bus.write(0x4000_0010, 4, 0xABCD)
        value, _ = bus.read(0x4000_0010, 4)
        assert value == 0xABCD

    def test_unmapped_address_raises(self):
        bus, _ = make_bus()
        with pytest.raises(BusError):
            bus.read(0x9000_0000, 4)
        assert bus.error_count == 1

    def test_overlapping_attach_rejected(self):
        bus, _ = make_bus()
        with pytest.raises(ValueError):
            bus.attach(SramBank(0x4000_8000, 0x1000), 0x4000_8000, 0x1000)

    def test_adjacent_regions_allowed(self):
        bus, _ = make_bus()
        bus.attach(SramBank(0x4001_0000, 0x1000), 0x4001_0000, 0x1000)
        bus.write(0x4001_0000, 4, 5)
        assert bus.read(0x4001_0000, 4)[0] == 5

    def test_topology_report(self):
        bus, _ = make_bus()
        topo = bus.topology()
        assert topo[0]["name"] == "sram"
        assert topo[0]["base"] == 0x4000_0000


class TestCycleAccounting:
    def test_single_read_cost(self):
        bus, _ = make_bus()
        _, cycles = bus.read(0x4000_0000, 4)
        # address phase + 1 data beat + 0 wait states
        assert cycles == 2

    def test_wait_states_added(self):
        bus = AhbBus()
        slow = SramBank(0x4000_0000, 0x1000, wait_states=3)
        bus.attach(slow, 0x4000_0000, 0x1000)
        _, cycles = bus.read(0x4000_0000, 4)
        assert cycles == 2 + 3

    def test_arbitration_cost_config(self):
        bus = AhbBus(AhbConfig(arbitration_cycles=2))
        bus.attach(SramBank(0x4000_0000, 0x1000), 0x4000_0000, 0x1000)
        _, cycles = bus.read(0x4000_0000, 4)
        assert cycles == 4

    def test_burst_cheaper_than_singles(self):
        bus, _ = make_bus()
        _, burst_cycles = bus.read_burst(0x4000_0000, 8)
        single_total = sum(bus.read(0x4000_0000 + 4 * i, 4)[1]
                           for i in range(8))
        assert burst_cycles < single_total

    def test_burst_cost_formula(self):
        bus, _ = make_bus()
        _, cycles = bus.read_burst(0x4000_0000, 8)
        assert cycles == 1 + 8  # address + 8 pipelined beats


class TestBursts:
    def test_burst_returns_all_words(self):
        bus, sram = make_bus()
        for index in range(8):
            sram.host_write_word(0x4000_0100 + 4 * index, index * 10)
        words, _ = bus.read_burst(0x4000_0100, 8)
        assert words == [0, 10, 20, 30, 40, 50, 60, 70]

    def test_burst_crossing_slave_boundary_rejected(self):
        bus, _ = make_bus()
        with pytest.raises(BusError):
            bus.read_burst(0x4000_FFFC, 4)

    def test_burst_length_limits(self):
        bus, _ = make_bus()
        with pytest.raises(ValueError):
            bus.read_burst(0x4000_0000, 0)
        with pytest.raises(ValueError):
            bus.read_burst(0x4000_0000, 100000)

    def test_write_burst_lands_in_memory(self):
        bus, sram = make_bus()
        bus.write_burst(0x4000_0200, [1, 2, 3, 4])
        assert [sram.host_read_word(0x4000_0200 + 4 * i)
                for i in range(4)] == [1, 2, 3, 4]

    def test_write_burst_falls_back_for_nonburst_slave(self):
        """Slaves flagged supports_write_burst=False get single writes
        (paper 3.2: the SDRAM adapter disallows write bursts)."""

        class NoWriteBurst(SramBank):
            supports_write_burst = False

            def __init__(self):
                super().__init__(0x5000_0000, 0x1000)
                self.burst_calls = 0

            def write_burst(self, address, words):
                self.burst_calls += 1
                return 0

        slave = NoWriteBurst()
        bus = AhbBus()
        bus.attach(slave, 0x5000_0000, 0x1000)
        bus.write_burst(0x5000_0000, [7, 8])
        assert slave.burst_calls == 0
        assert slave.host_read_word(0x5000_0000) == 7

    def test_statistics_counters(self):
        bus, _ = make_bus()
        bus.read(0x4000_0000, 4)
        bus.read_burst(0x4000_0000, 8)
        assert bus.transfers == 2
        assert bus.burst_transfers == 1
        assert bus.data_beats == 9
