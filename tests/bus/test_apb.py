"""APB bridge tests: decoding, sub-word access, penalty cycles."""

import pytest

from repro.bus.apb import ApbBridge
from repro.mem.interface import BusError


class FakeDevice:
    def __init__(self):
        self.registers = {}

    def read_register(self, offset):
        return self.registers.get(offset, 0)

    def write_register(self, offset, value):
        self.registers[offset] = value


@pytest.fixture
def bridge():
    bridge = ApbBridge(base=0x8000_0000, penalty_cycles=2)
    bridge.attach(FakeDevice(), 0x40, 0x10, "dev0")
    bridge.attach(FakeDevice(), 0x70, 0x10, "dev1")
    return bridge


class TestDecoding:
    def test_word_roundtrip(self, bridge):
        bridge.write(0x8000_0044, 4, 0xDEAD)
        value, _ = bridge.read(0x8000_0044, 4)
        assert value == 0xDEAD

    def test_devices_are_isolated(self, bridge):
        bridge.write(0x8000_0040, 4, 1)
        bridge.write(0x8000_0070, 4, 2)
        assert bridge.read(0x8000_0040, 4)[0] == 1
        assert bridge.read(0x8000_0070, 4)[0] == 2

    def test_unmapped_offset_raises(self, bridge):
        with pytest.raises(BusError):
            bridge.read(0x8000_0000, 4)

    def test_overlap_rejected(self, bridge):
        with pytest.raises(ValueError):
            bridge.attach(FakeDevice(), 0x48, 0x10)

    def test_penalty_cycles_charged(self, bridge):
        _, cycles = bridge.read(0x8000_0040, 4)
        assert cycles == 2
        assert bridge.write(0x8000_0040, 4, 0) == 2


class TestSubWordAccess:
    def test_byte_read_extracts_big_endian_lane(self, bridge):
        bridge.write(0x8000_0040, 4, 0x11223344)
        assert bridge.read(0x8000_0040, 1)[0] == 0x11
        assert bridge.read(0x8000_0041, 1)[0] == 0x22
        assert bridge.read(0x8000_0043, 1)[0] == 0x44

    def test_half_read(self, bridge):
        bridge.write(0x8000_0040, 4, 0x11223344)
        assert bridge.read(0x8000_0040, 2)[0] == 0x1122
        assert bridge.read(0x8000_0042, 2)[0] == 0x3344

    def test_byte_write_read_modify_writes_register(self, bridge):
        bridge.write(0x8000_0040, 4, 0x11223344)
        bridge.write(0x8000_0041, 1, 0xFF)
        assert bridge.read(0x8000_0040, 4)[0] == 0x11FF3344

    def test_access_counter(self, bridge):
        bridge.read(0x8000_0040, 4)
        bridge.write(0x8000_0040, 4, 0)
        assert bridge.accesses == 2

    def test_topology(self, bridge):
        names = [entry["name"] for entry in bridge.topology()]
        assert names == ["dev0", "dev1"]
