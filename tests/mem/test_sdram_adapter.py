"""FPX SDRAM controller + AHB adapter tests — the §3.2 design claims."""

import pytest

from repro.mem.adapter import AdapterConfig, AhbSdramAdapter
from repro.mem.interface import BusError
from repro.mem.sdram import FpxSdramController, SdramTiming

BASE = 0x6000_0000
SIZE = 1 << 20


def make_stack(read_burst_words=4):
    controller = FpxSdramController(BASE, SIZE)
    port = controller.connect("leon")
    adapter = AhbSdramAdapter(port, BASE, SIZE,
                              AdapterConfig(read_burst_words))
    return controller, port, adapter


class TestSdramController:
    def test_max_three_ports(self):
        controller = FpxSdramController(BASE, SIZE)
        for name in ("a", "b", "c"):
            controller.connect(name)
        with pytest.raises(ValueError):
            controller.connect("d")

    def test_read_write_64bit_roundtrip(self):
        controller, port, _ = make_stack()
        port.write_burst(BASE, [0x1122334455667788])
        values, _ = port.read_burst(BASE, 1)
        assert values == [0x1122334455667788]

    def test_sequential_burst_roundtrip(self):
        controller, port, _ = make_stack()
        data = [0x100 * i for i in range(8)]
        port.write_burst(BASE + 64, data)
        values, _ = port.read_burst(BASE + 64, 8)
        assert values == data

    def test_misaligned_request_rejected(self):
        _, port, _ = make_stack()
        with pytest.raises(BusError):
            port.read_burst(BASE + 4, 1)

    def test_out_of_range_rejected(self):
        _, port, _ = make_stack()
        with pytest.raises(BusError):
            port.read_burst(BASE + SIZE, 1)

    def test_burst_amortizes_handshake(self):
        """One 8-beat burst is much cheaper than eight 1-beat requests."""
        _, port, _ = make_stack()
        _, burst_cycles = port.read_burst(BASE, 8)
        singles = sum(port.read_burst(BASE + 8 * i, 1)[1] for i in range(8))
        assert burst_cycles < singles

    def test_row_miss_penalty(self):
        controller, port, _ = make_stack()
        timing = controller.timing
        _, first = port.read_burst(BASE, 1)           # opens row 0
        _, same_row = port.read_burst(BASE + 8, 1)    # row hit
        _, new_row = port.read_burst(BASE + timing.row_size * 4, 1)
        assert same_row < first
        assert new_row == same_row + timing.row_miss_penalty

    def test_arbitration_switch_costs(self):
        controller = FpxSdramController(BASE, SIZE)
        a = controller.connect("leon")
        b = controller.connect("net")
        a.read_burst(BASE, 1)
        _, same_port = a.read_burst(BASE + 8, 1)
        _, switched = b.read_burst(BASE + 16, 1)
        assert switched == same_port + controller.timing.arbitration_cycles
        assert controller.arbitration_switches == 1

    def test_stats(self):
        controller, port, _ = make_stack()
        port.read_burst(BASE, 4)
        stats = controller.stats()
        assert stats["handshakes"] == 1
        assert stats["beats"] == 4


class TestAdapterReads:
    def test_word_read_roundtrip(self):
        controller, _, adapter = make_stack()
        controller.host_write(BASE + 0x100, (0x0102030405060708)
                              .to_bytes(8, "big"))
        assert adapter.read(BASE + 0x100, 4)[0] == 0x01020304
        assert adapter.read(BASE + 0x104, 4)[0] == 0x05060708

    def test_sub_word_reads(self):
        controller, _, adapter = make_stack()
        controller.host_write(BASE, bytes([0xAA, 0xBB, 0xCC, 0xDD,
                                           0x11, 0x22, 0x33, 0x44]))
        assert adapter.read(BASE + 1, 1)[0] == 0xBB
        assert adapter.read(BASE + 2, 2)[0] == 0xCCDD

    def test_stream_buffer_saves_handshakes(self):
        """§3.2: a fixed 4-word read burst means the next 3 sequential
        words cost no new handshake."""
        controller, _, adapter = make_stack(read_burst_words=4)
        adapter.read(BASE, 4)
        handshakes_before = controller.total_handshakes
        for offset in (4, 8, 12):
            _, cycles = adapter.read(BASE + offset, 4)
            assert cycles == 0
        assert controller.total_handshakes == handshakes_before
        assert adapter.handshakes_saved == 3

    def test_fifth_word_needs_new_handshake(self):
        controller, _, adapter = make_stack(read_burst_words=4)
        adapter.read(BASE, 4)
        _, cycles = adapter.read(BASE + 16, 4)
        assert cycles > 0

    def test_line_fill_two_handshakes_at_burst4(self):
        """8-word (32 B) cache-line fill = 2 groups = 2 handshakes."""
        controller, _, adapter = make_stack(read_burst_words=4)
        adapter.read_burst(BASE, 8)
        assert controller.total_handshakes == 2

    def test_single_word_policy_needs_handshake_per_word(self):
        controller, _, adapter = make_stack(read_burst_words=1)
        adapter.read_burst(BASE, 8)
        assert controller.total_handshakes == 8

    def test_burst4_faster_than_burst1(self):
        """The paper's central adapter claim, in cycles."""
        _, _, adapter4 = make_stack(read_burst_words=4)
        _, _, adapter1 = make_stack(read_burst_words=1)
        _, cycles4 = adapter4.read_burst(BASE, 8)
        _, cycles1 = adapter1.read_burst(BASE, 8)
        assert cycles4 < cycles1


class TestAdapterWrites:
    def test_write_is_read_modify_write(self):
        """'the controller must first read the entire contents of the
        memory address, modify the appropriate 32 bits, and then rewrite
        the data.  This requires two separate handshakes for each write
        request.'"""
        controller, _, adapter = make_stack()
        adapter.write(BASE, 4, 0xAAAAAAAA)
        assert controller.total_handshakes == 2
        assert adapter.rmw_writes == 1

    def test_write_preserves_other_half(self):
        controller, _, adapter = make_stack()
        controller.host_write(BASE, bytes(range(8)))
        adapter.write(BASE + 4, 4, 0xDEADBEEF)
        assert controller.host_read(BASE, 8) == \
            bytes(range(4)) + bytes.fromhex("deadbeef")

    def test_byte_write_merges(self):
        controller, _, adapter = make_stack()
        controller.host_write(BASE, bytes(8))
        adapter.write(BASE + 3, 1, 0x7F)
        assert controller.host_read(BASE, 8)[3] == 0x7F

    def test_write_invalidates_stream_buffer(self):
        controller, _, adapter = make_stack()
        adapter.read(BASE, 4)
        adapter.write(BASE, 4, 0x12345678)
        value, _ = adapter.read(BASE, 4)
        assert value == 0x12345678

    def test_write_burst_disallowed_by_default(self):
        _, _, adapter = make_stack()
        assert not adapter.supports_write_burst
        with pytest.raises(RuntimeError):
            adapter.write_burst(BASE, [1, 2])

    def test_write_costs_more_than_read(self):
        """The RMW penalty the paper calls 'significantly impairing
        performance'."""
        _, _, adapter = make_stack()
        _, read_cycles = adapter.read(BASE + 0x800, 4)
        write_cycles = adapter.write(BASE + 0x1000, 4, 1)
        assert write_cycles > read_cycles

    def test_ablation_write_burst_coalesces_pairs(self):
        controller, port, _ = make_stack()
        adapter = AhbSdramAdapter(port, BASE, SIZE,
                                  AdapterConfig(4, allow_write_burst=True))
        before = controller.total_handshakes
        adapter.write_burst(BASE, [0x11111111, 0x22222222])
        # Aligned pair -> one 64-bit beat, one handshake (no RMW).
        assert controller.total_handshakes == before + 1
        assert controller.host_read(BASE, 8) == \
            bytes.fromhex("1111111122222222")
