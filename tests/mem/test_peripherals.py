"""APB peripheral tests: UART, timer, IRQ controller, LEDs, cycle counter."""

import pytest

from repro.peripherals import (
    Clock,
    CycleCounter,
    IrqController,
    LedPort,
    Timer,
    Uart,
)
from repro.peripherals.timer import CTRL_ENABLE, CTRL_LOAD, CTRL_RELOAD
from repro.peripherals.uart import STATUS_DATA_READY, STATUS_TX_HOLD_EMPTY


class TestClock:
    def test_advance_accumulates(self):
        clock = Clock()
        clock.advance(10)
        clock.advance(5)
        assert clock.cycles == 15

    def test_seconds_at_30mhz(self):
        clock = Clock(frequency_hz=30_000_000)
        clock.advance(30_000_000)
        assert clock.seconds() == pytest.approx(1.0)

    def test_time_cannot_reverse(self):
        clock = Clock()
        with pytest.raises(ValueError):
            clock.advance(-1)


class TestUart:
    def test_tx_log_collects_bytes(self):
        uart = Uart()
        for byte in b"ok":
            uart.write_register(0x0, byte)
        assert uart.transmitted() == b"ok"

    def test_rx_fifo_and_data_ready(self):
        uart = Uart()
        assert not uart.read_register(0x4) & STATUS_DATA_READY
        uart.host_send(b"A")
        assert uart.read_register(0x4) & STATUS_DATA_READY
        assert uart.read_register(0x0) == ord("A")
        assert not uart.read_register(0x4) & STATUS_DATA_READY

    def test_tx_always_ready(self):
        uart = Uart()
        assert uart.read_register(0x4) & STATUS_TX_HOLD_EMPTY

    def test_disabled_tx_drops(self):
        uart = Uart()
        uart.write_register(0x8, 0x1)  # RX only
        uart.write_register(0x0, ord("x"))
        assert uart.transmitted() == b""

    def test_disabled_rx_ignores_host(self):
        uart = Uart()
        uart.write_register(0x8, 0x2)  # TX only
        uart.host_send(b"y")
        assert uart.read_register(0x0) == 0

    def test_scaler_register(self):
        uart = Uart()
        uart.write_register(0xC, 0x123)
        assert uart.read_register(0xC) == 0x123


class TestTimer:
    def test_counts_down_from_loaded_value(self):
        clock = Clock()
        timer = Timer(clock)
        timer.write_register(0x0, 100)
        timer.write_register(0x8, CTRL_ENABLE)
        clock.advance(30)
        assert timer.read_register(0x0) == 70

    def test_prescaler_divides(self):
        clock = Clock()
        timer = Timer(clock, prescaler=10)
        timer.write_register(0x0, 100)
        timer.write_register(0x8, CTRL_ENABLE)
        clock.advance(95)
        assert timer.read_register(0x0) == 91

    def test_one_shot_saturates_at_zero(self):
        clock = Clock()
        timer = Timer(clock)
        timer.write_register(0x0, 10)
        timer.write_register(0x8, CTRL_ENABLE)
        clock.advance(50)
        assert timer.read_register(0x0) == 0
        assert timer.pending_underflows() == 1

    def test_auto_reload_wraps(self):
        clock = Clock()
        timer = Timer(clock)
        timer.write_register(0x4, 9)              # reload value
        timer.write_register(0x8, CTRL_ENABLE | CTRL_RELOAD | CTRL_LOAD)
        clock.advance(25)
        # start 9; after 25 ticks: 9 -> ... wraps at period 10
        assert timer.read_register(0x0) == 9 - (25 % 10) + (0 if 25 % 10 <= 9 else 10)
        assert timer.pending_underflows() == 2

    def test_disabled_timer_holds_value(self):
        clock = Clock()
        timer = Timer(clock)
        timer.write_register(0x0, 42)
        clock.advance(100)
        assert timer.read_register(0x0) == 42

    def test_bad_prescaler(self):
        with pytest.raises(ValueError):
            Timer(Clock(), prescaler=0)

    def test_late_enable_does_not_backdate_ticks(self):
        """Regression: enabling without CTRL_LOAD used to leave the
        anchor at the last load cycle, so every cycle since then was
        counted as if the timer had been running the whole time."""
        clock = Clock()
        timer = Timer(clock)
        timer.write_register(0x0, 50)
        clock.advance(1000)                 # timer off: not ticks
        timer.write_register(0x8, CTRL_ENABLE)
        assert timer.read_register(0x0) == 50
        clock.advance(20)
        assert timer.read_register(0x0) == 30

    def test_late_enable_underflows_only_from_the_edge(self):
        clock = Clock()
        timer = Timer(clock)
        timer.write_register(0x0, 50)
        clock.advance(1000)
        timer.write_register(0x8, CTRL_ENABLE)
        # Pre-fix this reported an underflow immediately (1000 phantom
        # ticks against a 50-tick countdown).
        assert timer.pending_underflows() == 0
        clock.advance(51)
        assert timer.pending_underflows() == 1

    def test_disable_then_reenable_resumes_where_it_stopped(self):
        clock = Clock()
        timer = Timer(clock)
        timer.write_register(0x0, 100)
        timer.write_register(0x8, CTRL_ENABLE)
        clock.advance(40)
        timer.write_register(0x8, 0)        # pause at 60
        clock.advance(500)
        assert timer.read_register(0x0) == 60
        timer.write_register(0x8, CTRL_ENABLE)
        clock.advance(10)
        assert timer.read_register(0x0) == 50

    def test_enable_with_load_still_loads(self):
        clock = Clock()
        timer = Timer(clock)
        timer.write_register(0x4, 7)
        clock.advance(1000)
        timer.write_register(0x8, CTRL_ENABLE | CTRL_LOAD)
        assert timer.read_register(0x0) == 7


class TestIrqController:
    def test_pending_level_respects_mask(self):
        irq = IrqController()
        irq.raise_irq(4)
        assert irq.pending_level() == 0      # masked by default
        irq.write_register(0x4, 1 << 4)
        assert irq.pending_level() == 4

    def test_highest_level_wins(self):
        irq = IrqController()
        irq.write_register(0x4, 0xFFFE)
        irq.raise_irq(3)
        irq.raise_irq(9)
        assert irq.pending_level() == 9

    def test_acknowledge_clears(self):
        irq = IrqController()
        irq.write_register(0x4, 0xFFFE)
        irq.raise_irq(5)
        irq.acknowledge(5)
        assert irq.pending_level() == 0

    def test_force_and_clear_registers(self):
        irq = IrqController()
        irq.write_register(0x4, 0xFFFE)
        irq.write_register(0x8, 1 << 7)   # force
        assert irq.pending_level() == 7
        irq.write_register(0xC, 1 << 7)   # clear
        assert irq.pending_level() == 0

    def test_invalid_level_rejected(self):
        irq = IrqController()
        with pytest.raises(ValueError):
            irq.raise_irq(0)
        with pytest.raises(ValueError):
            irq.raise_irq(16)


class TestLeds:
    def test_pattern_rendering(self):
        leds = LedPort(Clock())
        leds.write_register(0, 0b1010_0001)
        assert leds.pattern() == "#.#....#"

    def test_history_records_changes_with_time(self):
        clock = Clock()
        leds = LedPort(clock)
        leds.write_register(0, 1)
        clock.advance(50)
        leds.write_register(0, 3)
        leds.write_register(0, 3)  # no change, no record
        assert leds.history == [(0, 1), (50, 3)]

    def test_width_mask(self):
        leds = LedPort(Clock(), width=4)
        leds.write_register(0, 0xFF)
        assert leds.value == 0xF


class TestCycleCounter:
    def test_arm_freeze_measures_interval(self):
        clock = Clock()
        counter = CycleCounter(clock)
        clock.advance(100)
        counter.arm()
        clock.advance(250)
        assert counter.freeze() == 250
        clock.advance(50)
        assert counter.value() == 250  # frozen

    def test_value_live_while_running(self):
        clock = Clock()
        counter = CycleCounter(clock)
        counter.arm()
        clock.advance(7)
        assert counter.value() == 7

    def test_apb_register_interface(self):
        clock = Clock()
        counter = CycleCounter(clock)
        counter.write_register(0x4, 1)    # arm
        clock.advance(12)
        assert counter.read_register(0x0) == 12
        assert counter.read_register(0x4) == 1
        counter.write_register(0x4, 0)    # freeze
        clock.advance(5)
        assert counter.read_register(0x0) == 12

    def test_rearm_restarts_from_zero(self):
        clock = Clock()
        counter = CycleCounter(clock)
        counter.arm()
        clock.advance(10)
        counter.freeze()
        counter.arm()
        clock.advance(3)
        assert counter.value() == 3

    def test_rearm_then_immediate_freeze_reads_zero(self):
        """Regression: arm() must discard the previous frozen count, so
        freezing after zero elapsed cycles reads 0, not the stale value
        of the last measured program."""
        clock = Clock()
        counter = CycleCounter(clock)
        counter.arm()
        clock.advance(123)
        assert counter.freeze() == 123
        counter.arm()                    # re-arm, no cycles elapse
        assert counter.value() == 0
        assert counter.freeze() == 0     # not 123
        assert counter.read_register(0x0) == 0

    def test_double_freeze_keeps_first_count(self):
        clock = Clock()
        counter = CycleCounter(clock)
        counter.arm()
        clock.advance(42)
        assert counter.freeze() == 42
        clock.advance(58)
        assert counter.freeze() == 42    # second freeze is a no-op

    def test_clock_reset_while_armed_never_goes_negative(self):
        """Regression: a clock reset while the counter is armed used to
        freeze a negative elapsed count, which the 32-bit register then
        exposed as wrapped garbage."""
        clock = Clock()
        counter = CycleCounter(clock)
        clock.advance(100)
        counter.arm()
        clock.reset()
        assert counter.value() == 0
        assert counter.freeze() == 0
        assert counter.read_register(0x0) == 0


class TestStateSnapshots:
    """Every peripheral a checkpoint covers must round-trip through
    state()/load_state() — including state that used to be private and
    unreachable (a counter armed mid-count, a running timer)."""

    def test_cycle_counter_armed_mid_count(self):
        clock = Clock()
        counter = CycleCounter(clock)
        clock.advance(100)
        counter.arm()
        clock.advance(37)
        snapshot = counter.state()

        other_clock = Clock()
        other_clock.advance(137)
        restored = CycleCounter(other_clock)
        restored.load_state(snapshot)
        assert restored.running
        assert restored.value() == counter.value() == 37
        other_clock.advance(13)
        assert restored.freeze() == 50

    def test_cycle_counter_frozen_value_survives(self):
        clock = Clock()
        counter = CycleCounter(clock)
        counter.arm()
        clock.advance(42)
        counter.freeze()
        restored = CycleCounter(Clock())
        restored.load_state(counter.state())
        assert not restored.running
        assert restored.read_register(0x0) == 42

    def test_running_timer_round_trips(self):
        clock = Clock()
        timer = Timer(clock, prescaler=2)
        timer.write_register(0x4, 100)  # reload value
        timer.write_register(0x8, CTRL_ENABLE | CTRL_LOAD)
        clock.advance(40)  # 20 timer ticks

        other_clock = Clock()
        other_clock.advance(clock.cycles)
        restored = Timer(other_clock, prescaler=2)
        restored.load_state(timer.state())
        assert restored.value() == timer.value() == 80
        other_clock.advance(20)
        clock.advance(20)
        assert restored.value() == timer.value()

    def test_timer_snapshot_rejects_prescaler_mismatch(self):
        timer = Timer(Clock(), prescaler=2)
        other = Timer(Clock(), prescaler=4)
        with pytest.raises(ValueError):
            other.load_state(timer.state())

    def test_uart_round_trips_fifo_and_log(self):
        uart = Uart()
        uart.host_send(b"hi")
        uart.write_register(0x0, ord("A"))
        uart.read_register(0x0)  # pop 'h'
        restored = Uart()
        restored.load_state(uart.state())
        assert restored.tx_log == [ord("A")]
        assert list(restored.rx_fifo) == [ord("i")]
        assert restored.read_register(0x4) & STATUS_DATA_READY

    def test_led_history_round_trips(self):
        clock = Clock()
        leds = LedPort(clock)
        leds.write_register(0, 0x5)
        clock.advance(10)
        leds.write_register(0, 0xA)
        restored = LedPort(Clock())
        restored.load_state(leds.state())
        assert restored.value == 0xA
        assert restored.history == [(0, 0x5), (10, 0xA)]
