"""Boot ROM (original vs modified, Figure 5), SRAM, memory map tests."""

import pytest

from repro.cpu import IntegerUnit
from repro.bus.ahb import AhbBus
from repro.mem.bootrom import BootRom, build_boot_rom
from repro.mem.interface import BusError
from repro.mem.memmap import DEFAULT_MAP, MemoryMap
from repro.mem.sram import SramBank


class TestMemoryMap:
    def test_regions(self):
        mm = DEFAULT_MAP
        assert mm.region_of(0x0000_0100) == "prom"
        assert mm.region_of(0x4000_1000) == "sram"
        assert mm.region_of(0x6000_0000) == "sdram"
        assert mm.region_of(0x8000_0040) == "apb"
        assert mm.region_of(0xF000_0000) == "unmapped"

    def test_cacheability(self):
        mm = DEFAULT_MAP
        assert mm.cacheable(0x4000_1000)      # program SRAM
        assert mm.cacheable(0x0000_0000)      # PROM
        assert mm.cacheable(0x6000_0000)      # SDRAM
        assert not mm.cacheable(0x8000_0040)  # APB
        assert not mm.cacheable(mm.mailbox_start)  # mailbox word
        assert not mm.cacheable(mm.result_addr)

    def test_stack_leaves_save_area_headroom(self):
        mm = DEFAULT_MAP
        assert mm.stack_top + 64 <= mm.sram_base + mm.sram_size
        assert mm.stack_top % 8 == 0

    def test_custom_map(self):
        mm = MemoryMap(sram_base=0x2000_0000, sram_size=0x1000_0000)
        assert mm.mailbox_start == 0x2000_0000
        assert mm.program_base == 0x2000_1000


class TestSram:
    def test_host_and_bus_views_agree(self):
        sram = SramBank(0x4000_0000, 0x1000)
        sram.host_write(0x4000_0010, b"\x01\x02\x03\x04")
        value, _ = sram.read(0x4000_0010, 4)
        assert value == 0x01020304
        sram.write(0x4000_0020, 4, 0xAABB)
        assert sram.host_read_word(0x4000_0020) == 0xAABB

    def test_out_of_range_raises(self):
        sram = SramBank(0x4000_0000, 0x100)
        with pytest.raises(BusError):
            sram.read(0x4000_0100, 4)
        with pytest.raises(BusError):
            sram.host_write(0x3FFF_FFFF, b"x")

    def test_burst_read(self):
        sram = SramBank(0x4000_0000, 0x1000)
        for index in range(4):
            sram.host_write_word(0x4000_0000 + 4 * index, index)
        words, waits = sram.read_burst(0x4000_0000, 4)
        assert words == [0, 1, 2, 3]
        assert waits == 0


class TestBootRomImage:
    def test_trap_table_occupies_first_4k(self):
        info = build_boot_rom()
        assert info.boot_start >= 0x1000
        assert info.poll_address > info.boot_start

    def test_reset_vector_branches(self):
        info = build_boot_rom()
        word = int.from_bytes(info.image[0:4], "big")
        assert (word >> 30) == 0  # format 2 (branch)

    def test_all_256_entries_present(self):
        info = build_boot_rom()
        for tt in range(256):
            word = int.from_bytes(info.image[tt * 16:tt * 16 + 4], "big")
            assert (word >> 22) & 7 == 2, f"entry {tt} is not a Bicc"

    def test_symbols_exported(self):
        info = build_boot_rom()
        for name in ("check_ready", "error_state", "boot_start",
                     "window_overflow", "window_underflow", "syscall_exit"):
            assert name in info.symbols

    def test_rom_is_read_only(self):
        info = build_boot_rom()
        rom = BootRom(0, 0x2000, info.image)
        with pytest.raises(BusError):
            rom.write(0x100, 4, 1)

    def test_rom_read_and_burst(self):
        info = build_boot_rom()
        rom = BootRom(0, 0x2000, info.image)
        value, _ = rom.read(0, 4)
        assert value == int.from_bytes(info.image[:4], "big")
        words, _ = rom.read_burst(0, 4)
        assert len(words) == 4

    def test_image_must_fit(self):
        info = build_boot_rom()
        with pytest.raises(ValueError):
            BootRom(0, 256, info.image)

    def test_nwindows_parameterizes_handlers(self):
        small = build_boot_rom(nwindows=4)
        large = build_boot_rom(nwindows=16)
        assert small.image != large.image


class TestBootBehaviour:
    def _boot_system(self, modified: bool):
        mm = DEFAULT_MAP
        info = build_boot_rom(mm, modified=modified)
        bus = AhbBus()
        bus.attach(BootRom(mm.prom_base, mm.prom_size, info.image),
                   mm.prom_base, mm.prom_size, "prom")
        sram = SramBank(mm.sram_base, mm.sram_size)
        bus.attach(sram, mm.sram_base, mm.sram_size, "sram")
        # A permissive APB stand-in for the UART the original ROM polls.
        from repro.bus.apb import ApbBridge
        from repro.peripherals import Uart
        apb = ApbBridge(mm.apb_base)
        uart = Uart()
        from repro.mem.memmap import UART_OFFSET
        apb.attach(uart, UART_OFFSET, 0x10, "uart")
        bus.attach(apb, mm.apb_base, mm.apb_size, "apb")
        iu = IntegerUnit(bus, bus, reset_pc=mm.prom_base)
        return info, iu, sram, uart

    def test_modified_rom_reaches_polling_loop(self):
        info, iu, _, _ = self._boot_system(modified=True)
        iu.run(max_instructions=5000, until_pc=info.poll_address)
        assert iu.ctrl.et  # traps enabled by boot

    def test_modified_rom_polls_until_mailbox_nonzero(self):
        info, iu, sram, _ = self._boot_system(modified=True)
        iu.run(max_instructions=5000, until_pc=info.poll_address)
        # Spin several loop iterations: stays in the poll region.
        poll_region = range(info.poll_address, info.poll_address + 40)
        for _ in range(200):
            iu.step()
            assert iu.pc in poll_region
        # Release: write a target address; must jump there.
        target = DEFAULT_MAP.program_base
        sram.host_write_word(DEFAULT_MAP.mailbox_start, target)
        sram.host_write_word(target, 0x01000000)  # nop
        sram.host_write_word(target + 4, 0x01000000)
        iu.run(max_instructions=2000, until_pc=target)
        assert iu.pc == target

    def test_original_rom_blocks_on_uart(self):
        """Figure 5 left: without a UART event the stock ROM never leaves
        its wait loop — the reason the modification exists."""
        info, iu, sram, _ = self._boot_system(modified=False)
        load_wait = info.symbols["load_wait"]
        iu.run(max_instructions=5000, until_pc=load_wait)
        sram.host_write_word(DEFAULT_MAP.mailbox_start,
                             DEFAULT_MAP.program_base)  # mailbox is ignored
        wait_region = range(load_wait, load_wait + 40)
        for _ in range(300):
            iu.step()
            assert iu.pc in wait_region

    def test_original_rom_proceeds_after_uart_event(self):
        info, iu, _, uart = self._boot_system(modified=False)
        load_wait = info.symbols["load_wait"]
        iu.run(max_instructions=5000, until_pc=load_wait)
        uart.host_send(b"\x01")
        iu.run(max_instructions=500,
               until_pc=info.symbols["check_ready"])
