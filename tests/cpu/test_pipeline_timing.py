"""Cycle-accounting tests for the LEON2 pipeline timing model."""

import pytest

from repro.cpu.decode import decode
from repro.cpu.isa import Cond, Op3, Op3Mem
from repro.cpu.pipeline import PipelineModel, TimingConfig
from repro.toolchain.asm import encoder

from tests.conftest import build, make_iu


def cycles_for(source_body: str) -> int:
    """Cycles consumed from _start to `done` on zero-wait flat memory."""
    source = f"""
    .text
    .global _start
_start:
{source_body}
done:
    ba done
    nop
"""
    image = build(source)
    iu, _ = make_iu(source)
    return iu.run(max_instructions=10_000, until_pc=image.symbols["done"])


class TestIssueCosts:
    def test_alu_op_is_one_cycle(self):
        model = PipelineModel()
        assert model.issue_cycles(decode(encoder.arith_reg(Op3.ADD, 1, 2, 3))) == 1

    def test_load_is_two_cycles(self):
        model = PipelineModel()
        assert model.issue_cycles(decode(encoder.ld_imm(1, 2, 0))) == 2

    def test_store_is_three_cycles(self):
        model = PipelineModel()
        assert model.issue_cycles(decode(encoder.st_imm(1, 2, 0))) == 3

    def test_ldd_three_std_four(self):
        model = PipelineModel()
        assert model.issue_cycles(decode(encoder.mem_imm(Op3Mem.LDD, 2, 1, 0))) == 3
        assert model.issue_cycles(decode(encoder.mem_imm(Op3Mem.STD, 2, 1, 0))) == 4

    def test_jmpl_two_cycles(self):
        model = PipelineModel()
        assert model.issue_cycles(decode(encoder.jmpl_imm(0, 15, 8))) == 2

    def test_mul_cost_configurable(self):
        iterative = PipelineModel(TimingConfig(mul_cycles=35))
        fast = PipelineModel(TimingConfig(mul_cycles=2))
        word = decode(encoder.arith_reg(Op3.UMUL, 1, 2, 3))
        assert iterative.issue_cycles(word) == 35
        assert fast.issue_cycles(word) == 2

    def test_div_cost(self):
        model = PipelineModel()
        assert model.issue_cycles(
            decode(encoder.arith_reg(Op3.UDIV, 1, 2, 3))) == 35

    def test_wrpsr_two_cycles(self):
        model = PipelineModel()
        assert model.issue_cycles(
            decode(encoder.arith_imm(Op3.WRPSR, 0, 0, 0xE0))) == 2

    def test_custom_op_cost(self):
        model = PipelineModel(TimingConfig(custom_op_cycles=3))
        assert model.issue_cycles(decode(encoder.cpop1(1, 5, 2, 3))) == 3


class TestLoadUseInterlock:
    def test_dependent_use_adds_bubble(self):
        model = PipelineModel()
        model.issue_cycles(decode(encoder.ld_imm(9, 8, 0)))   # ld -> %o1
        # add %o1, 1, %o2 immediately uses the load result.
        cost = model.issue_cycles(decode(encoder.arith_imm(Op3.ADD, 10, 9, 1)))
        assert cost == 2  # 1 + interlock

    def test_independent_instruction_no_bubble(self):
        model = PipelineModel()
        model.issue_cycles(decode(encoder.ld_imm(9, 8, 0)))
        cost = model.issue_cycles(decode(encoder.arith_imm(Op3.ADD, 12, 11, 1)))
        assert cost == 1

    def test_interlock_only_immediately_after(self):
        model = PipelineModel()
        model.issue_cycles(decode(encoder.ld_imm(9, 8, 0)))
        model.issue_cycles(decode(encoder.nop()))
        cost = model.issue_cycles(decode(encoder.arith_imm(Op3.ADD, 10, 9, 1)))
        assert cost == 1

    def test_store_data_dependency_counts(self):
        model = PipelineModel()
        model.issue_cycles(decode(encoder.ld_imm(9, 8, 0)))
        cost = model.issue_cycles(decode(encoder.st_imm(9, 10, 0)))
        assert cost == 4  # 3 + interlock

    def test_interlock_can_be_disabled(self):
        model = PipelineModel(TimingConfig(load_use_interlock=False))
        model.issue_cycles(decode(encoder.ld_imm(9, 8, 0)))
        cost = model.issue_cycles(decode(encoder.arith_imm(Op3.ADD, 10, 9, 1)))
        assert cost == 1

    def test_g0_load_never_interlocks(self):
        model = PipelineModel()
        model.issue_cycles(decode(encoder.ld_imm(0, 8, 0)))  # ld -> %g0
        cost = model.issue_cycles(decode(encoder.arith_reg(Op3.ADD, 1, 0, 0)))
        assert cost == 1


class TestEndToEndCycleCounts:
    def test_straightline_alu_sequence(self):
        # 4 ALU ops at 1 cycle each.
        assert cycles_for("""
    mov 1, %o0
    add %o0, 1, %o0
    add %o0, 1, %o0
    add %o0, 1, %o0
""") == 4

    def test_annulled_slot_costs_one_cycle(self):
        taken = cycles_for("""
    ba,a over
    nop
over:
    nop
""")
        # ba(1) + annulled slot(1) + nop(1)
        assert taken == 3

    def test_loop_cycle_count_deterministic(self):
        first = cycles_for("""
    mov 10, %o1
loop:
    deccc %o1
    bne loop
    nop
""")
        second = cycles_for("""
    mov 10, %o1
loop:
    deccc %o1
    bne loop
    nop
""")
        assert first == second
        # mov + 10 * (deccc + bne + nop)
        assert first == 1 + 10 * 3

    def test_cycles_accumulate_on_iu(self):
        source = """
    .text
    .global _start
_start:
    mov 1, %o0
done:
    ba done
    nop
"""
        image = build(source)
        iu, _ = make_iu(source)
        consumed = iu.run(max_instructions=100,
                          until_pc=image.symbols["done"])
        assert iu.cycles == consumed
        assert iu.instret == 1
