"""Decoder unit tests + decode-cache behaviour."""

import pytest

from repro.cpu.decode import DecodeCache, decode
from repro.cpu.isa import OP2_BICC, OP2_SETHI, Cond, Op3, Op3Mem
from repro.toolchain.asm import encoder


class TestFieldExtraction:
    def test_call_fields(self):
        word = encoder.call(0x100)
        inst = decode(word)
        assert inst.op == 1
        assert inst.disp30 == 0x100

    def test_call_negative_displacement(self):
        inst = decode(encoder.call(-4))
        assert inst.disp30 == -4

    def test_sethi_fields(self):
        inst = decode(encoder.sethi(5, 0x12345))
        assert inst.op == 0
        assert inst.op2 == OP2_SETHI
        assert inst.rd == 5
        assert inst.imm22 == 0x12345

    def test_branch_fields(self):
        inst = decode(encoder.branch(int(Cond.NE), -16, annul=True))
        assert inst.op2 == OP2_BICC
        assert inst.cond == Cond.NE
        assert inst.annul
        assert inst.disp22 == -16

    def test_arith_register_form(self):
        inst = decode(encoder.arith_reg(Op3.ADD, 2, 3, 4))
        assert inst.op == 2
        assert inst.op3 == Op3.ADD
        assert (inst.rd, inst.rs1, inst.rs2) == (2, 3, 4)
        assert not inst.imm

    def test_arith_immediate_form(self):
        inst = decode(encoder.arith_imm(Op3.SUB, 1, 2, -42))
        assert inst.imm
        assert inst.simm13 == -42

    def test_simm13_sign_extension_boundaries(self):
        assert decode(encoder.arith_imm(Op3.ADD, 1, 1, 4095)).simm13 == 4095
        assert decode(encoder.arith_imm(Op3.ADD, 1, 1, -4096)).simm13 == -4096

    def test_memory_asi_field(self):
        inst = decode(encoder.mem_reg(Op3Mem.LDA, 1, 2, 3, asi=0x0B))
        assert inst.asi == 0x0B

    def test_cpop1_opf(self):
        inst = decode(encoder.cpop1(4, 0x42, 1, 2))
        assert inst.op3 == Op3.CPOP1
        assert inst.opf == 0x42

    def test_nop_is_sethi_zero(self):
        inst = decode(encoder.nop())
        assert inst.op2 == OP2_SETHI
        assert inst.rd == 0
        assert inst.imm22 == 0

    def test_decoded_is_hashable_and_frozen(self):
        inst = decode(encoder.nop())
        hash(inst)
        with pytest.raises(AttributeError):
            inst.rd = 5


class TestDecodeCache:
    def test_hit_returns_same_object(self):
        cache = DecodeCache()
        first = cache.lookup(encoder.nop())
        second = cache.lookup(encoder.nop())
        assert first is second
        assert cache.hits == 1
        assert cache.misses == 1

    def test_capacity_bound(self):
        cache = DecodeCache(capacity=4)
        for value in range(10):
            cache.lookup(encoder.arith_imm(Op3.ADD, 1, 1, value))
        assert len(cache._cache) <= 4

    def test_clear(self):
        cache = DecodeCache()
        cache.lookup(encoder.nop())
        cache.clear()
        cache.lookup(encoder.nop())
        assert cache.misses == 2
