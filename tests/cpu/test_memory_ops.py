"""Loads, stores, atomics, alignment traps, bus errors."""

import pytest

from repro.cpu import traps
from repro.cpu.isa import Trap
from repro.utils import u32

from tests.conftest import RAM_BASE, make_iu, run_source

from .test_execute import regval

DATA = RAM_BASE + 0x8000


class TestLoadsStores:
    def test_word_roundtrip(self):
        assert regval(f"""
    set {DATA}, %o1
    set 0x12345678, %o2
    st %o2, [%o1]
    ld [%o1], %o0
""") == 0x12345678

    def test_word_offset_addressing(self):
        assert regval(f"""
    set {DATA}, %o1
    mov 11, %o2
    st %o2, [%o1 + 8]
    ld [%o1 + 8], %o0
""") == 11

    def test_negative_offset(self):
        assert regval(f"""
    set {DATA + 16}, %o1
    mov 5, %o2
    st %o2, [%o1 - 8]
    ld [%o1 - 8], %o0
""") == 5

    def test_register_plus_register_addressing(self):
        assert regval(f"""
    set {DATA}, %o1
    mov 12, %o2
    mov 33, %o3
    st %o3, [%o1 + %o2]
    ld [%o1 + %o2], %o0
""") == 33

    def test_bytes_are_big_endian(self):
        iu, mem, _ = run_source(f"""
    .text
    .global _start
_start:
    set {DATA}, %o1
    set 0x11223344, %o2
    st %o2, [%o1]
done:
    ba done
    nop
""")
        assert mem.dump(DATA, 4) == bytes([0x11, 0x22, 0x33, 0x44])

    def test_ldub_zero_extends(self):
        assert regval(f"""
    set {DATA}, %o1
    set 0xff, %o2
    stb %o2, [%o1]
    ldub [%o1], %o0
""") == 0xFF

    def test_ldsb_sign_extends(self):
        assert regval(f"""
    set {DATA}, %o1
    set 0x80, %o2
    stb %o2, [%o1]
    ldsb [%o1], %o0
""") == u32(-128)

    def test_lduh_ldsh(self):
        assert regval(f"""
    set {DATA}, %o1
    set 0x8001, %o2
    sth %o2, [%o1]
    lduh [%o1], %o0
""") == 0x8001
        assert regval(f"""
    set {DATA}, %o1
    set 0x8001, %o2
    sth %o2, [%o1]
    ldsh [%o1], %o0
""") == u32(-0x7FFF)

    def test_stb_touches_single_byte(self):
        iu, mem, _ = run_source(f"""
    .text
    .global _start
_start:
    set {DATA}, %o1
    set 0xAABBCCDD, %o2
    st %o2, [%o1]
    mov 0x11, %o3
    stb %o3, [%o1 + 2]
done:
    ba done
    nop
""")
        assert mem.read_word(DATA) == 0xAABB11DD

    def test_ldd_std_pair(self):
        iu, _, _ = run_source(f"""
    .text
    .global _start
_start:
    set {DATA}, %o1
    set 0x01020304, %o2
    set 0x05060708, %o3
    std %o2, [%o1]
    ldd [%o1], %o4
done:
    ba done
    nop
""")
        assert iu.regs.read(12) == 0x01020304  # %o4
        assert iu.regs.read(13) == 0x05060708  # %o5

    def test_ldd_odd_rd_is_illegal(self):
        iu, _ = make_iu(f"""
    .text
    .global _start
_start:
    set {DATA}, %o0
    ldd [%o0], %o1
""")
        with pytest.raises(traps.ErrorMode) as err:
            iu.run(max_instructions=10)
        assert err.value.tt == Trap.ILLEGAL_INSTRUCTION


class TestAtomics:
    def test_ldstub_reads_then_sets_ff(self):
        iu, mem, _ = run_source(f"""
    .text
    .global _start
_start:
    set {DATA}, %o1
    mov 0x5A, %o2
    stb %o2, [%o1]
    ldstub [%o1], %o0
done:
    ba done
    nop
""")
        assert iu.regs.read(8) == 0x5A
        assert mem.dump(DATA, 1) == b"\xff"

    def test_swap_exchanges(self):
        iu, mem, _ = run_source(f"""
    .text
    .global _start
_start:
    set {DATA}, %o1
    mov 111, %o2
    st %o2, [%o1]
    mov 222, %o0
    swap [%o1], %o0
done:
    ba done
    nop
""")
        assert iu.regs.read(8) == 111
        assert mem.read_word(DATA) == 222

    def test_ldstub_spinlock_idiom(self):
        """Second ldstub sees the lock taken."""
        assert regval(f"""
    set {DATA}, %o1
    ldstub [%o1], %o2     ! acquire: reads 0
    ldstub [%o1], %o0     ! second acquire: reads 0xff
""") == 0xFF


class TestAlignmentAndFaults:
    @pytest.mark.parametrize("insn,offset", [
        ("ld", 1), ("ld", 2), ("ld", 3),
        ("lduh", 1), ("st", 2), ("sth", 1), ("ldd", 4), ("swap", 2),
    ])
    def test_misaligned_access_traps(self, insn, offset):
        operand = f"[%o1 + {offset}]"
        if insn in ("st", "sth"):
            body = f"    {insn} %o2, {operand}"
        else:
            body = f"    {insn} {operand}, %o2"
        iu, _ = make_iu(f"""
    .text
    .global _start
_start:
    set {DATA}, %o1
{body}
""")
        with pytest.raises(traps.ErrorMode) as err:
            iu.run(max_instructions=10)
        assert err.value.tt == Trap.MEM_ADDRESS_NOT_ALIGNED

    def test_unmapped_address_data_access_trap(self):
        iu, _ = make_iu("""
    .text
    .global _start
_start:
    set 0x90000000, %o1
    ld [%o1], %o0
""")
        with pytest.raises(traps.ErrorMode) as err:
            iu.run(max_instructions=10)
        assert err.value.tt == Trap.DATA_ACCESS

    def test_byte_access_never_misaligned(self):
        assert regval(f"""
    set {DATA}, %o1
    mov 7, %o2
    stb %o2, [%o1 + 3]
    ldub [%o1 + 3], %o0
""") == 7


class TestDataSection:
    def test_load_from_linked_data(self):
        assert regval("""
    set table, %o1
    ld [%o1 + 4], %o0
    ba done
    nop
    .data
table:
    .word 10, 20, 30
""") == 20

    def test_string_data(self):
        iu, mem, syms = run_source("""
    .text
    .global _start
_start:
    set message, %o1
    ldub [%o1], %o0
done:
    ba done
    nop
    .data
message:
    .asciz "Hi"
""")
        assert iu.regs.read(8) == ord("H")
        assert mem.dump(syms["message"], 3) == b"Hi\x00"
