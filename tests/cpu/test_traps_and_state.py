"""Trap entry, state registers, Ticc, interrupts, custom instructions."""

import pytest

from repro.cpu import traps
from repro.cpu.iu import INTERRUPT_TRAP_BASE, IntegerUnit
from repro.cpu.isa import Trap
from repro.mem.interface import FlatMemory
from repro.utils import u32

from tests.conftest import CODE_BASE, RAM_BASE, build, make_iu, run_source

from .test_execute import regval

TRAP_TABLE = RAM_BASE + 0x10000


def iu_with_trap_table(body: str, handlers: str = "") -> tuple:
    """An IU with traps enabled and a trap table in RAM."""
    table_entries = []
    for tt in range(256):
        table_entries.append("    ba default_handler")
        table_entries.append("    nop")
        table_entries.append("    nop")
        table_entries.append("    nop")
    source = f"""
    .text
    .global _start
_start:
{body}
done:
    ba done
    nop
{handlers}
default_handler:
    ba default_handler
    nop
"""
    image = build(source)
    iu, mem = make_iu(source)
    # Minimal table: every entry branches to a per-test handler label.
    return iu, mem, image


class TestTrapEntry:
    def test_trap_entry_sequence(self):
        """ET<-0, PS<-S, S<-1, CWP decremented, l1/l2 = PC/nPC."""
        source = """
    .text
    .global _start
_start:
    ta 0x10
trap_site:
    nop
"""
        image = build(source)
        iu, mem = make_iu(source)
        iu.ctrl.et = True
        iu.ctrl.tba = 0x40020000
        old_cwp = iu.ctrl.cwp
        iu.step()  # executes ta -> trap
        assert not iu.ctrl.et
        assert iu.ctrl.s and iu.ctrl.ps
        assert iu.ctrl.cwp == (old_cwp - 1) % 8
        assert iu.ctrl.tt == 0x80 + 0x10
        # %l1/%l2 of the new window hold PC and nPC of the trap point.
        assert iu.regs.read(17) == image.entry
        assert iu.regs.read(18) == image.entry + 4
        # Vector = TBA | tt << 4.
        assert iu.pc == 0x40020000 | ((0x80 + 0x10) << 4)

    def test_trap_with_et0_halts_in_error_mode(self):
        iu, _ = make_iu("""
    .text
    .global _start
_start:
    ta 0
""")
        assert not iu.ctrl.et
        with pytest.raises(traps.ErrorMode):
            iu.run(max_instructions=5)
        assert iu.halted
        assert iu.error_tt == 0x80

    def test_stepping_after_error_mode_raises(self):
        iu, _ = make_iu("""
    .text
    .global _start
_start:
    ta 0
""")
        with pytest.raises(traps.ErrorMode):
            iu.run(max_instructions=5)
        with pytest.raises(traps.ErrorMode):
            iu.step()

    def test_conditional_trap_not_taken(self):
        assert regval("""
    mov 1, %o1
    cmp %o1, 2
    te 3                  ! equal? no -> no trap
    mov 42, %o0
""") == 42

    def test_illegal_instruction_trap(self):
        iu, mem = make_iu()
        mem.write_word(CODE_BASE, 0x00000000)  # UNIMP
        with pytest.raises(traps.ErrorMode) as err:
            iu.run(max_instructions=5)
        assert err.value.tt == Trap.ILLEGAL_INSTRUCTION

    def test_fp_op_raises_fp_disabled(self):
        iu, mem = make_iu()
        # FBfcc encoding: op=0, op2=6
        mem.write_word(CODE_BASE, (0 << 30) | (6 << 22))
        with pytest.raises(traps.ErrorMode) as err:
            iu.run(max_instructions=5)
        assert err.value.tt == Trap.FP_DISABLED

    def test_instruction_fetch_fault(self):
        iu, mem = make_iu("""
    .text
    .global _start
_start:
    set 0x99000000, %o1
    jmp %o1
    nop
""")
        with pytest.raises(traps.ErrorMode) as err:
            iu.run(max_instructions=10)
        assert err.value.tt == Trap.INSTRUCTION_ACCESS

    def test_rett_returns_and_reenables_traps(self):
        """Full trap round-trip through a real handler."""
        source = f"""
    .text
    .global _start
_start:
    wr %g0, 0xc0, %psr    ! S|PS, ET=0
    nop
    nop
    nop
    set handler_table, %g1
    wr %g1, 0, %tbr
    nop
    nop
    nop
    wr %g0, 0xe0, %psr    ! enable traps
    nop
    nop
    nop
    mov 0, %o0
    ta 1
    mov 42, %o0           ! must execute after rett
done:
    ba done
    nop

    .align 4096
handler_table:
    .skip {0x81 * 16}
handler_entry:            ! entry for tt=0x81
    jmpl %l2, %g0         ! return to nPC (instruction after ta)
    rett %l2 + 4
"""
        image = build(source)
        iu, mem = make_iu(source)
        iu.run(max_instructions=200, until_pc=image.symbols["done"])
        assert iu.regs.read(8) == 42
        assert iu.ctrl.et  # traps re-enabled by rett

    def test_rett_with_et1_is_illegal(self):
        iu, _ = make_iu("""
    .text
    .global _start
_start:
    rett %o7
""")
        iu.ctrl.et = True
        # illegal_instruction trap -> vectors (tba=0 unmapped in flat RAM)
        with pytest.raises(traps.TrapException) as excinfo:
            from repro.cpu.execute import exec_rett
            from repro.cpu.decode import decode
            from repro.toolchain.asm import encoder
            from repro.cpu.isa import Op3
            exec_rett(iu, decode(encoder.arith_imm(Op3.RETT, 0, 15, 0)))
        assert excinfo.value.tt == Trap.ILLEGAL_INSTRUCTION


class TestStateRegisters:
    def test_rd_wr_y(self):
        assert regval("""
    set 0xCAFE, %o1
    wr %o1, 0, %y
    nop
    nop
    nop
    rd %y, %o0
""") == 0xCAFE

    def test_wr_xors_operands(self):
        """WRY writes rs1 ^ operand2 (SPARC's quirky XOR semantics)."""
        assert regval("""
    mov 0xF0, %o1
    wr %o1, 0x0F, %y
    nop
    nop
    nop
    rd %y, %o0
""") == 0xFF

    def test_rd_psr_reflects_icc(self):
        result = regval("""
    mov 0, %o1
    subcc %o1, 1, %g0     ! N=1, C=1
    rd %psr, %o0
""")
        assert (result >> 23) & 1 == 1  # N
        assert (result >> 20) & 1 == 1  # C

    def test_wr_psr_cwp_out_of_range_is_illegal(self):
        iu, _ = make_iu("""
    .text
    .global _start
_start:
    wr %g0, 0xdf, %psr    ! CWP=31 > NWINDOWS-1
""")
        with pytest.raises(traps.ErrorMode) as err:
            iu.run(max_instructions=5)
        assert err.value.tt == Trap.ILLEGAL_INSTRUCTION

    def test_wim_masked_to_nwindows(self):
        iu, _, _ = run_source("""
    .text
    .global _start
_start:
    set 0xffffffff, %o1
    wr %o1, 0, %wim
    nop
    nop
    nop
    rd %wim, %o0
done:
    ba done
    nop
""")
        assert iu.regs.read(8) == 0xFF  # 8 windows

    def test_rd_tbr_after_wr(self):
        assert regval("""
    set 0x40030000, %o1
    wr %o1, 0, %tbr
    nop
    nop
    nop
    rd %tbr, %o0
""") == 0x4003_0000

    def test_asr17_reports_nwindows(self):
        assert regval("    rd %asr17, %o0") == 7  # NWINDOWS-1

    def test_impl_defined_asr_roundtrip(self):
        assert regval("""
    mov 0x5a, %o1
    wr %o1, 0, %asr20
    rd %asr20, %o0
""") == 0x5A

    def test_privileged_reads_trap_in_user_mode(self):
        iu, _ = make_iu("""
    .text
    .global _start
_start:
    rd %psr, %o0
""")
        iu.ctrl.s = False
        with pytest.raises(traps.ErrorMode) as err:
            iu.run(max_instructions=5)
        assert err.value.tt == Trap.PRIVILEGED_INSTRUCTION


class TestInterrupts:
    def _iu(self, level_source):
        source = """
    .text
    .global _start
_start:
    nop
    nop
    nop
    nop
done:
    ba done
    nop
"""
        iu, mem = make_iu(source)
        iu.ctrl.et = True
        iu.ctrl.tba = RAM_BASE + 0x40000
        iu.interrupt_source = level_source
        return iu

    def test_interrupt_above_pil_taken(self):
        iu = self._iu(lambda: 5)
        iu.ctrl.pil = 3
        iu.step()
        assert iu.ctrl.tt == INTERRUPT_TRAP_BASE + 5

    def test_interrupt_at_or_below_pil_masked(self):
        iu = self._iu(lambda: 5)
        iu.ctrl.pil = 5
        iu.step()
        assert iu.ctrl.et  # no trap taken

    def test_level_15_not_maskable(self):
        iu = self._iu(lambda: 15)
        iu.ctrl.pil = 15
        iu.step()
        assert iu.ctrl.tt == INTERRUPT_TRAP_BASE + 15

    def test_no_interrupts_while_et0(self):
        iu = self._iu(lambda: 7)
        iu.ctrl.et = False
        iu.step()
        assert iu.instret == 1  # executed normally


class TestCustomInstructions:
    def test_unregistered_cpop_raises_cp_disabled(self):
        iu, _ = make_iu("""
    .text
    .global _start
_start:
    custom 1, %o1, %o2, %o0
""")
        with pytest.raises(traps.ErrorMode) as err:
            iu.run(max_instructions=5)
        assert err.value.tt == Trap.CP_DISABLED

    def test_registered_extension_executes(self):
        source = """
    .text
    .global _start
_start:
    mov 21, %o1
    mov 2, %o2
    custom 7, %o1, %o2, %o0
done:
    ba done
    nop
"""
        image = build(source)
        iu, _ = make_iu(source)
        iu.extensions[7] = lambda unit, inst: unit.regs.write(
            inst.rd, unit.regs.read(inst.rs1) * unit.regs.read(inst.rs2))
        iu.run(max_instructions=20, until_pc=image.symbols["done"])
        assert iu.regs.read(8) == 42


class TestRunControl:
    def test_watchdog_expires(self):
        iu, _ = make_iu("""
    .text
    .global _start
_start:
    ba _start
    nop
""")
        with pytest.raises(traps.WatchdogExpired):
            iu.run(max_instructions=100, until_pc=0xDEAD0000)

    def test_reset_restores_initial_state(self):
        iu, _, _ = run_source("""
    .text
    .global _start
_start:
    mov 9, %o0
    save %sp, -96, %sp
done:
    ba done
    nop
""")
        assert iu.cycles > 0
        iu.reset()
        assert iu.cycles == 0
        assert iu.instret == 0
        assert iu.ctrl.cwp == 0
        assert iu.regs.read(8) == 0

    def test_state_summary_keys(self):
        iu, _ = make_iu()
        summary = iu.state_summary()
        for key in ("pc", "npc", "psr", "cwp", "wim", "y", "cycles",
                    "instret", "halted", "regs"):
            assert key in summary
