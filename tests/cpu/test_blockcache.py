"""Unit tests for the basic-block translation cache.

Oracle: the plain :class:`FunctionalUnit` interpreter (and, for
architectural registers, the :class:`IntegerUnit`).  Every program runs
on a fresh interpreter and a fresh :class:`TranslatedUnit` over
identical memory; registers, control state, step counters and the full
RAM image must match exactly — the step-count contract is what makes
``fast_forward=N`` engine-independent.
"""

from __future__ import annotations

import pytest

from repro.cpu import IntegerUnit
from repro.cpu.blockcache import MAX_BLOCK, TranslatedUnit
from repro.cpu.fastpath import FastMemory, FunctionalUnit
from repro.cpu.traps import WatchdogExpired
from repro.mem.interface import FlatMemory
from tests.conftest import RAM_BASE, RAM_SIZE, STACK_TOP, build
from tests.cpu.test_fastpath import SMALL_PROGRAM, _RecordingPort


def _make(source: str, cls, mmio_port=None):
    """A fresh engine of *cls* loaded with *source*; returns (unit, ram,
    image)."""
    image = build(source)
    buf = bytearray(RAM_SIZE)
    for base, blob in image.segments.items():
        buf[base - RAM_BASE:base - RAM_BASE + len(blob)] = blob
    mem = FastMemory()
    mem.add_region(RAM_BASE, buf, name="ram")
    if mmio_port is not None:
        mem.add_mmio(0x8000_0000, 0x100, mmio_port, name="apb")
    unit = cls(mem, reset_pc=image.entry)
    unit.regs.write(14, STACK_TOP)
    return unit, buf, image


def _assert_same_state(tu: TranslatedUnit, fu: FunctionalUnit,
                       tu_ram: bytearray, fu_ram: bytearray) -> None:
    for reg in range(32):
        assert tu.regs.read(reg) == fu.regs.read(reg), f"reg {reg}"
    assert tu.ctrl.psr == fu.ctrl.psr
    assert tu.ctrl.wim == fu.ctrl.wim
    assert tu.ctrl.tbr == fu.ctrl.tbr
    assert tu.ctrl.y == fu.ctrl.y
    assert (tu.pc, tu.npc, tu.annul) == (fu.pc, fu.npc, fu.annul)
    assert (tu.halted, tu.error_tt) == (fu.halted, fu.error_tt)
    assert tu.instret == fu.instret
    assert tu.cycles == fu.cycles
    assert tu.annulled_slots == fu.annulled_slots
    assert tu.trap_count == fu.trap_count
    assert tu_ram == fu_ram


def _run_pair(source: str, max_instructions: int = 10_000,
              until: str | None = "done"):
    """Run *source* on interpreter and translator; compare final state;
    return the translated unit (for counter assertions)."""
    fu, fu_ram, image = _make(source, FunctionalUnit)
    tu, tu_ram, _ = _make(source, TranslatedUnit)
    stop = image.symbols[until] if until else None
    fu.run(max_instructions=max_instructions, until_pc=stop)
    tu.run(max_instructions=max_instructions, until_pc=stop)
    _assert_same_state(tu, fu, tu_ram, fu_ram)
    return tu


class TestBlockParity:
    def test_small_program(self):
        tu = _run_pair(SMALL_PROGRAM)
        assert tu.blocks_translated > 0

    def test_alu_and_condition_codes(self):
        _run_pair("""
    .text
    .global _start
_start:
    set 0x7FFFFFFF, %o0
    addcc %o0, 1, %o1       ! signed overflow sets V
    addxcc %o1, %o1, %o2    ! carry-in path
    set -5, %o3
    subcc %g0, %o3, %o4     ! borrow
    subxcc %o4, 1, %o5
    orncc %o5, %g0, %l0     ! inverted-operand logic needs masking
    xnorcc %l0, %o0, %l1
    sra %o0, 4, %l2
    srl %o3, 28, %l3
    sll %o3, 3, %l4
    sra %o3, %l3, %l5       ! register shift count
done:
    nop
""")

    def test_branch_arms_and_annul(self):
        _run_pair("""
    .text
    .global _start
_start:
    set 3, %l0
loop:
    deccc %l0
    bne,a loop              ! taken: slot executes; untaken: annulled
    add %g2, 1, %g2
    ba,a skipped            ! BA,a always annuls its slot
    add %g3, 100, %g3
skipped:
    be here                 ! Z set -> taken, plain slot
    add %g4, 1, %g4
here:
    bneg done               ! N clear -> falls through
    add %g5, 1, %g5
done:
    nop
""")

    def test_call_and_jmpl_chains(self):
        _run_pair("""
    .text
    .global _start
_start:
    call leaf
    mov 7, %o0
    call leaf
    mov 9, %o0
    add %g2, %g3, %g4
done:
    nop
leaf:
    retl
    add %o0, 1, %g2
""")

    def test_save_restore_window_rotation(self):
        """SAVE/RESTORE run as generic handlers mid-block; the generated
        code must re-derive its window base afterwards.  (Deep recursion
        with real overflow/underflow traps is covered by the difftest
        window-trap parity suite, which runs all three engines.)"""
        _run_pair("""
    .text
    .global _start
_start:
    set 6, %o0
    call fib
    nop
    mov %o0, %g7
done:
    nop
fib:
    save %sp, -96, %sp
    subcc %i0, 2, %g0
    bl base
    mov %i0, %i5
    sub %i0, 1, %o0
    call fib
    nop
    mov %o0, %l1
    sub %i5, 2, %o0
    call fib
    nop
    add %o0, %l1, %i0
    ret
    restore
base:
    mov 1, %i0
    ret
    restore
""", max_instructions=100_000)

    def test_trap_mid_block_misaligned_load(self):
        """A misaligned load in the middle of a block must enter the
        trap with exact pc/npc and retire counts (ET=0: ErrorMode)."""
        src = """
    .text
    .global _start
_start:
    set 0x40002001, %o0
    add %g0, 1, %g1
    add %g0, 2, %g2
    ld [%o0], %o1           ! misaligned -> trap, ET=0 -> error mode
    add %g0, 3, %g3
done:
    nop
"""
        fu, fu_ram, image = _make(src, FunctionalUnit)
        tu, tu_ram, _ = _make(src, TranslatedUnit)
        from repro.cpu.traps import ErrorMode
        for unit in (fu, tu):
            with pytest.raises(ErrorMode):
                unit.run(max_instructions=100,
                         until_pc=image.symbols["done"])
        _assert_same_state(tu, fu, tu_ram, fu_ram)

    def test_mmio_load_store_inside_block(self):
        """Device accesses inside a translated block take the slow path
        and reach the port exactly once each."""
        src = """
    .text
    .global _start
_start:
    set 0x80000010, %o0
    ld [%o0], %o1
    st %o1, [%o0 + 4]
    ldub [%o0], %o2
    stb %o2, [%o0 + 8]
done:
    nop
"""
        fu_port, tu_port = _RecordingPort(), _RecordingPort()
        fu, fu_ram, image = _make(src, FunctionalUnit, mmio_port=fu_port)
        tu, tu_ram, _ = _make(src, TranslatedUnit, mmio_port=tu_port)
        done = image.symbols["done"]
        fu.run(max_instructions=100, until_pc=done)
        tu.run(max_instructions=100, until_pc=done)
        _assert_same_state(tu, fu, tu_ram, fu_ram)
        assert tu_port.reads == fu_port.reads
        assert tu_port.writes == fu_port.writes


class TestCoherence:
    def test_store_into_translated_block(self):
        """The SMC patch loop from the fastpath suite, now with block
        invalidation in the mix."""
        tu = _run_pair("""
    .text
    .global _start
_start:
    set patch, %o0
    set target, %o1
    ld [%o0], %o2
    st %o2, [%o1]           ! overwrite 'add 1' with 'add 2'
    set 3, %l1
loop:
    deccc %l1
target:
    add %g3, 1, %g3
    bg loop
    nop
done:
    nop
patch:
    add %g3, 2, %g3
""")
        assert tu.blocks_invalidated > 0

    def test_store_into_active_block_bails_out(self):
        """A block that patches its *own* later instructions must
        observe the new code the first time through."""
        tu = _run_pair("""
    .text
    .global _start
_start:
    set patch, %o0
    ld [%o0], %o1
    set target, %o2
    add %g0, 5, %g4
    st %o1, [%o2]           ! patch an instruction *ahead* in this block
    add %g1, 1, %g1
target:
    add %g3, 1, %g3         ! becomes 'add %g3, 2, %g3'
    add %g2, 1, %g2
done:
    nop
patch:
    add %g3, 2, %g3
""")
        assert tu.blocks_invalidated > 0

    def test_store_into_delay_slot(self):
        """Patching the delay slot of an already-translated branch."""
        _run_pair("""
    .text
    .global _start
_start:
    set patch, %o0
    ld [%o0], %o1
    set slot, %o2
    set 2, %l1
loop:
    deccc %l1
    bg loop
slot:
    add %g5, 1, %g5         ! patched after first translation
    st %o1, [%o2]
    set 2, %l1
loop2:
    deccc %l1
    bg loop2
    add %g0, 0, %g0
    b loop_done
    nop
loop_done:
    add %g6, %g5, %g6
done:
    nop
patch:
    add %g5, 3, %g5
""")

    def test_flush_clears_block_cache(self):
        src = """
    .text
    .global _start
_start:
    add %g1, 1, %g1
    flush [%g0]
    add %g2, 1, %g2
done:
    nop
"""
        tu = _run_pair(src)
        # the flush dropped everything translated before it; only code
        # translated *after* the flush may remain cached
        assert tu.blocks_invalidated >= 1
        assert all(b.entry > build(src).symbols["_start"]
                   for b in tu._blocks.values())

    def test_data_write_invalidates_spanning_pages(self):
        """A block straddling a page boundary dies when either page is
        written."""
        mem = FastMemory()
        buf = bytearray(0x1000)
        mem.add_region(RAM_BASE, buf, name="ram")
        # fill with NOPs then a branch-to-self at the end
        nop = (0x01000000).to_bytes(4, "big")
        for i in range(0, 0x200, 4):
            buf[i:i + 4] = nop
        tu = TranslatedUnit(mem, reset_pc=RAM_BASE + 0xF0)
        block = tu._translate(RAM_BASE + 0xF0)  # spans pages 0 and 1
        assert block is not None and len(block.pages) == 2
        tu.data_write(RAM_BASE + 0x104, 4, 0)  # second page only
        assert (RAM_BASE + 0xF0) not in tu._blocks
        assert tu.blocks_invalidated == 1


class TestStepContract:
    def test_fast_forward_exact_budget(self):
        """fast_forward(N) executes exactly N steps even when N lands
        mid-block — byte-identical to N interpreter steps."""
        src = SMALL_PROGRAM
        probe, _, image = _make(src, FunctionalUnit)
        total = probe.fast_forward(10_000,
                                   stop_pc=image.symbols["done"])
        assert total > 4  # several budgets land mid-block below
        for budget in range(1, total + 1):
            fu, fu_ram, _ = _make(src, FunctionalUnit)
            tu, tu_ram, _ = _make(src, TranslatedUnit)
            assert fu.fast_forward(budget) == tu.fast_forward(budget)
            _assert_same_state(tu, fu, tu_ram, fu_ram)

    def test_fast_forward_stop_pc_inside_block(self):
        """A stop PC in the middle of a translated block must still
        stop exactly there."""
        src = """
    .text
    .global _start
_start:
    add %g1, 1, %g1
    add %g2, 1, %g2
mid:
    add %g3, 1, %g3
    add %g4, 1, %g4
done:
    nop
"""
        fu, fu_ram, image = _make(src, FunctionalUnit)
        tu, tu_ram, _ = _make(src, TranslatedUnit)
        mid = image.symbols["mid"]
        # translate the whole block first, then ask to stop inside it
        tu2, _, _ = _make(src, TranslatedUnit)
        tu2.fast_forward(100, stop_pc=image.symbols["done"])
        fu.fast_forward(100, stop_pc=mid)
        tu.fast_forward(100, stop_pc=mid)
        assert tu.pc == mid == fu.pc
        _assert_same_state(tu, fu, tu_ram, fu_ram)

    def test_run_contract_matches_functional(self):
        """Same run() contract as the interpreter: silent return without
        until_pc, WatchdogExpired with one."""
        src = """
    .text
    .global _start
_start:
    b _start
    add %g1, 1, %g1
done:
    nop
"""
        fu, _, image = _make(src, FunctionalUnit)
        tu, _, _ = _make(src, TranslatedUnit)
        assert fu.run(max_instructions=50) >= 0   # silent return
        assert tu.run(max_instructions=50) >= 0
        assert tu.instret == fu.instret
        with pytest.raises(WatchdogExpired):
            tu.run(max_instructions=50, until_pc=image.symbols["done"])

    def test_max_block_bound(self):
        """A long straight-line run is split into MAX_BLOCK-bounded
        blocks and still matches the interpreter."""
        body = "\n".join(f"    add %g1, {i % 7 + 1}, %g1"
                         for i in range(3 * MAX_BLOCK))
        tu = _run_pair(f"""
    .text
    .global _start
_start:
{body}
done:
    nop
""")
        assert tu.blocks_translated >= 3
        assert all(b.length <= MAX_BLOCK
                   for b in tu._blocks.values())


class TestSimulatorIntegration:
    def test_translated_unit_shares_architectural_state(self):
        from repro.core.sim import Simulator

        sim = Simulator(capture_memory_trace=False, obs=False)
        tu = sim.translated_unit()
        assert tu.regs is sim.cpu.regs
        assert tu.ctrl is sim.cpu.ctrl
        tu.regs.write(9, 0x4321)
        assert sim.cpu.regs.read(9) == 0x4321

    def test_iu_registers_match_after_translated_run(self):
        """Cross-check against the cycle-accurate engine, not just the
        functional interpreter."""
        image = build(SMALL_PROGRAM)
        iu_mem = FlatMemory(size=RAM_SIZE, base=RAM_BASE)
        for base, blob in image.segments.items():
            iu_mem.load(base, blob)
        iu = IntegerUnit(iu_mem, iu_mem, reset_pc=image.entry)
        iu.regs.write(14, STACK_TOP)
        tu, _, _ = _make(SMALL_PROGRAM, TranslatedUnit)
        done = image.symbols["done"]
        iu.run(max_instructions=10_000, until_pc=done)
        tu.run(max_instructions=10_000, until_pc=done)
        for reg in range(32):
            assert tu.regs.read(reg) == iu.regs.read(reg), f"reg {reg}"
        assert tu.ctrl.psr == iu.ctrl.psr
        assert tu.instret == iu.instret
