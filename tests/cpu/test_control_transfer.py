"""Branches, delay slots, annulment, CALL/JMPL, SAVE/RESTORE."""

import pytest

from repro.cpu import traps
from repro.cpu.isa import Trap

from tests.conftest import build, make_iu, run_source

from .test_execute import regval


class TestBranches:
    def test_taken_branch_executes_delay_slot(self):
        assert regval("""
    mov 0, %o0
    ba target
    mov 1, %o0            ! delay slot runs
    mov 99, %o0           ! skipped
target:
""") == 1

    def test_untaken_branch_falls_through(self):
        assert regval("""
    mov 1, %o1
    cmp %o1, 2
    be target
    nop
    mov 7, %o0
    ba done
    nop
target:
    mov 9, %o0
""") == 7

    def test_ba_annul_skips_delay_slot(self):
        assert regval("""
    mov 5, %o0
    ba,a target
    mov 99, %o0           ! annulled: must NOT execute
target:
""") == 5

    def test_conditional_taken_with_annul_executes_slot(self):
        assert regval("""
    mov 1, %o1
    cmp %o1, 1
    be,a target
    mov 42, %o0           ! taken + annul bit: slot executes
    mov 99, %o0
target:
""") == 42

    def test_conditional_untaken_with_annul_skips_slot(self):
        assert regval("""
    mov 0, %o0
    mov 1, %o1
    cmp %o1, 2
    be,a target
    mov 99, %o0           ! untaken + annul: slot skipped
    mov 7, %o0
target:
""") == 7

    def test_bn_never_taken(self):
        assert regval("""
    mov 1, %o0
    bn target
    nop
    mov 2, %o0
    ba done
    nop
target:
    mov 3, %o0
""") == 2

    @pytest.mark.parametrize("a,b,branch,taken", [
        (1, 2, "bl", True), (2, 1, "bl", False), (1, 1, "bl", False),
        (1, 2, "ble", True), (1, 1, "ble", True), (2, 1, "ble", False),
        (2, 1, "bg", True), (1, 1, "bg", False),
        (2, 1, "bge", True), (1, 1, "bge", True), (1, 2, "bge", False),
        (1, 2, "bne", True), (1, 1, "bne", False),
        (1, 1, "be", True), (1, 2, "be", False),
    ])
    def test_signed_conditions(self, a, b, branch, taken):
        result = regval(f"""
    mov 0, %o0
    set {a & 0xFFFFFFFF}, %o1
    set {b & 0xFFFFFFFF}, %o2
    cmp %o1, %o2
    {branch} yes
    nop
    ba done
    nop
yes:
    mov 1, %o0
""")
        assert bool(result) == taken

    @pytest.mark.parametrize("a,b,branch,taken", [
        (0xFFFFFFFF, 1, "bgu", True),     # unsigned: big > 1
        (0xFFFFFFFF, 1, "bl", True),      # signed: -1 < 1
        (1, 0xFFFFFFFF, "blu", True),
        (1, 0xFFFFFFFF, "bg", True),
        (5, 5, "bleu", True),
        (5, 5, "bgeu", True),
        (4, 5, "bgeu", False),
    ])
    def test_unsigned_vs_signed_conditions(self, a, b, branch, taken):
        result = regval(f"""
    mov 0, %o0
    set {a}, %o1
    set {b}, %o2
    cmp %o1, %o2
    {branch} yes
    nop
    ba done
    nop
yes:
    mov 1, %o0
""")
        assert bool(result) == taken

    def test_negative_overflow_conditions(self):
        # bvs after signed overflow
        assert regval("""
    mov 0, %o0
    set 0x7fffffff, %o1
    addcc %o1, 1, %o2
    bvs yes
    nop
    ba done
    nop
yes:
    mov 1, %o0
""") == 1

    def test_backward_branch_loop(self):
        assert regval("""
    mov 0, %o0
    mov 10, %o1
loop:
    add %o0, 2, %o0
    deccc %o1
    bne loop
    nop
""") == 20


class TestCallJmpl:
    def test_call_sets_o7(self):
        iu, _, syms = run_source("""
    .text
    .global _start
_start:
    call sub
    nop
done:
    ba done
    nop
sub:
    retl
    nop
""")
        # %o7 holds the address of the call instruction itself.
        assert iu.regs.read(15) == syms["_start"]

    def test_retl_returns_past_delay_slot(self):
        assert regval("""
    mov 0, %o0
    call sub
    nop
    add %o0, 1, %o0       ! executes after return
    ba done
    nop
sub:
    retl
    mov 10, %o0
""") == 11

    def test_jmpl_indirect_jump(self):
        assert regval("""
    set target, %o1
    jmp %o1
    nop
    mov 99, %o0
target:
    mov 3, %o0
""") == 3

    def test_jmpl_misaligned_target_traps(self):
        iu, _ = make_iu("""
    .text
    .global _start
_start:
    set done + 2, %o1
    jmp %o1
    nop
done:
    nop
""")
        with pytest.raises(traps.ErrorMode) as err:
            iu.run(max_instructions=10)
        assert err.value.tt == Trap.MEM_ADDRESS_NOT_ALIGNED

    def test_call_register_form_via_o7(self):
        assert regval("""
    set sub, %o1
    call %o1
    nop
    ba done
    nop
sub:
    retl
    mov 21, %o0
""") == 21


class TestSaveRestore:
    def test_save_shifts_outs_to_ins(self):
        assert regval("""
    mov 77, %o1
    save %sp, -96, %sp
    mov %i1, %l0
    restore %l0, 0, %o0
""") == 77

    def test_save_computes_sum_in_new_window(self):
        """SAVE reads rs1/rs2 in the OLD window, writes rd in the NEW."""
        iu, _, _ = run_source("""
    .text
    .global _start
_start:
    set 0x40080000, %sp
    save %sp, -104, %sp
done:
    ba done
    nop
""")
        assert iu.regs.read(14) == 0x40080000 - 104  # new %sp
        assert iu.regs.read(30) == 0x40080000        # %fp = old %sp

    def test_restore_returns_to_previous_window(self):
        iu, _, _ = run_source("""
    .text
    .global _start
_start:
    mov 5, %l0
    save %sp, -96, %sp
    mov 6, %l0
    restore
done:
    ba done
    nop
""")
        assert iu.regs.read(16) == 5  # %l0 of the original window

    def test_save_overflow_traps_when_wim_blocks(self):
        iu, _ = make_iu("""
    .text
    .global _start
_start:
    save %sp, -96, %sp
""")
        iu.ctrl.wim = 1 << 7  # window 7 invalid; save from 0 goes to 7
        with pytest.raises(traps.ErrorMode) as err:
            iu.run(max_instructions=5)
        assert err.value.tt == Trap.WINDOW_OVERFLOW

    def test_restore_underflow_traps(self):
        iu, _ = make_iu("""
    .text
    .global _start
_start:
    restore
""")
        iu.ctrl.wim = 1 << 1  # window 1 invalid; restore from 0 goes to 1
        with pytest.raises(traps.ErrorMode) as err:
            iu.run(max_instructions=5)
        assert err.value.tt == Trap.WINDOW_UNDERFLOW
