"""Property tests for ArchState capture/restore (the two-speed engine's
correctness keystone).

The property that matters: *restore-then-run equals run-straight-
through, byte for byte* — same final architectural state (every window,
control registers, memory image, peripheral counters), same UART bytes,
same result word.  Programs come from the differential suite's seeded
generator, so the explored state space includes window traps, MMIO side
effects and multiply/divide traffic, not just straight-line ALU code.
"""

from __future__ import annotations

import functools
import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.sim import Simulator
from repro.cpu.archstate import ArchState
from tests.difftest import gen
from tests.difftest.harness import build

SEEDS = st.integers(min_value=0, max_value=500)
STEPS = st.integers(min_value=0, max_value=4000)

#: Each example boots and runs real simulators; cap the count and drop
#: the per-example deadline so slow hosts don't flake.
EXAMPLE_SETTINGS = settings(
    max_examples=15, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


@functools.lru_cache(maxsize=64)
def _image(seed: int):
    return build(gen.generate(seed))


@given(seed=SEEDS, steps=STEPS)
@EXAMPLE_SETTINGS
def test_capture_restore_round_trip(seed, steps):
    """restore(capture(sim)) into a fresh simulator reproduces the
    captured state exactly (and the digest is stable)."""
    warm = Simulator(capture_memory_trace=False, obs=False)
    state = warm.checkpoint(_image(seed), steps)

    fresh = Simulator(capture_memory_trace=False, obs=False)
    fresh.restore_state(state)
    again = fresh.capture_state()

    assert again == state
    assert again.digest() == state.digest()


@given(seed=SEEDS, steps=STEPS)
@EXAMPLE_SETTINGS
def test_restore_then_run_equals_straight_through(seed, steps):
    """Fast-forward N steps, checkpoint, restore into a *different*
    simulator, finish there — the final machine must be byte-identical
    to a cold cycle-accurate run, peripheral counters included."""
    image = _image(seed)

    straight = Simulator(capture_memory_trace=False, obs=False)
    report_straight = straight.run(image)
    final_straight = ArchState.capture(straight)

    warm = Simulator(capture_memory_trace=False, obs=False)
    state = warm.checkpoint(image, steps)
    resumed = Simulator(capture_memory_trace=False, obs=False)
    report_resumed = resumed.run(from_checkpoint=state)
    final_resumed = ArchState.capture(resumed)

    assert final_resumed == final_straight
    assert report_resumed.uart_output == report_straight.uart_output
    assert report_resumed.result_word == report_straight.result_word


@given(seed=SEEDS, steps=STEPS)
@EXAMPLE_SETTINGS
def test_payload_round_trip(seed, steps):
    """to_payload -> JSON text -> from_payload is lossless, and the
    reconstructed state still restores into a working simulator."""
    warm = Simulator(capture_memory_trace=False, obs=False)
    state = warm.checkpoint(_image(seed), steps)

    wire = json.loads(json.dumps(state.to_payload()))
    back = ArchState.from_payload(wire)
    assert back == state
    assert back.digest() == state.digest()

    resumed = Simulator(capture_memory_trace=False, obs=False)
    report = resumed.run(from_checkpoint=back)
    cold = Simulator(capture_memory_trace=False, obs=False)
    assert report.uart_output == cold.run(_image(seed)).uart_output


def test_payload_schema_is_checked():
    warm = Simulator(capture_memory_trace=False, obs=False)
    payload = warm.checkpoint(_image(0), 100).to_payload()
    payload["schema"] = 999
    try:
        ArchState.from_payload(payload)
    except ValueError as err:
        assert "schema" in str(err)
    else:
        raise AssertionError("stale schema accepted")


def test_restore_rejects_mismatched_memory_size():
    warm = Simulator(capture_memory_trace=False, obs=False)
    state = warm.checkpoint(_image(0), 100)
    state.memory["sram"] = state.memory["sram"][:-1]
    fresh = Simulator(capture_memory_trace=False, obs=False)
    try:
        fresh.restore_state(state)
    except ValueError as err:
        assert "sram" in str(err)
    else:
        raise AssertionError("truncated memory image accepted")
