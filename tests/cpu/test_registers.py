"""Unit tests for the windowed register file and control registers."""

import pytest

from repro.cpu import isa
from repro.cpu.registers import ControlRegisters, RegisterFile, RegisterWindowError


class TestRegisterFile:
    def test_g0_reads_zero(self):
        regs = RegisterFile()
        assert regs.read(0) == 0

    def test_g0_writes_discarded(self):
        regs = RegisterFile()
        regs.write(0, 0xDEADBEEF)
        assert regs.read(0) == 0

    def test_globals_roundtrip(self):
        regs = RegisterFile()
        for reg in range(1, 8):
            regs.write(reg, reg * 0x1111)
        for reg in range(1, 8):
            assert regs.read(reg) == reg * 0x1111

    def test_globals_shared_across_windows(self):
        regs = RegisterFile()
        regs.write(1, 42)
        regs.cwp = 3
        assert regs.read(1) == 42

    def test_values_masked_to_32_bits(self):
        regs = RegisterFile()
        regs.write(8, 0x1_2345_6789)
        assert regs.read(8) == 0x2345_6789

    def test_locals_are_private_per_window(self):
        regs = RegisterFile()
        regs.write(16, 0xAAAA)       # %l0 of window 0
        regs.cwp = 7                 # as after one SAVE
        regs.write(16, 0xBBBB)
        assert regs.read(16) == 0xBBBB
        regs.cwp = 0
        assert regs.read(16) == 0xAAAA

    def test_outs_alias_next_window_ins(self):
        """SAVE semantics: caller's outs become callee's ins."""
        regs = RegisterFile(nwindows=8)
        regs.cwp = 5
        regs.write(8, 0x1234)        # %o0 at window 5
        regs.cwp = 4                 # SAVE decrements CWP
        assert regs.read(24) == 0x1234  # %i0 at window 4

    def test_ins_alias_previous_window_outs(self):
        regs = RegisterFile(nwindows=8)
        regs.cwp = 2
        regs.write(30, 0xFEE1)       # %i6 (%fp)
        regs.cwp = 3
        assert regs.read(14) == 0xFEE1  # %o6 (%sp) of the caller window

    def test_window_wraparound(self):
        """The file is circular: window 0's ins alias window 1's outs."""
        regs = RegisterFile(nwindows=8)
        regs.cwp = 0
        regs.write(27, 77)           # %i3 of window 0
        regs.cwp = 1
        assert regs.read(11) == 77   # %o3 of window 1

    def test_full_rotation_preserves_values(self):
        regs = RegisterFile(nwindows=8)
        for window in range(8):
            regs.cwp = window
            regs.write(20, window + 100)  # %l4
        for window in range(8):
            regs.cwp = window
            assert regs.read(20) == window + 100

    def test_read_window_does_not_disturb_cwp(self):
        regs = RegisterFile()
        regs.cwp = 2
        regs.write_window(5, 17, 99)
        assert regs.cwp == 2
        assert regs.read_window(5, 17) == 99
        assert regs.cwp == 2

    def test_out_of_range_register_raises(self):
        regs = RegisterFile()
        with pytest.raises(RegisterWindowError):
            regs.read(32)
        with pytest.raises(RegisterWindowError):
            regs.write(40, 1)

    def test_bad_window_count_rejected(self):
        with pytest.raises(ValueError):
            RegisterFile(nwindows=1)
        with pytest.raises(ValueError):
            RegisterFile(nwindows=33)

    def test_snapshot_names(self):
        regs = RegisterFile()
        regs.write(9, 123)
        snap = regs.snapshot()
        assert snap["o1"] == 123
        assert len(snap) == 32

    @pytest.mark.parametrize("nwindows", [2, 4, 8, 16, 32])
    def test_configurable_window_counts(self, nwindows):
        regs = RegisterFile(nwindows=nwindows)
        regs.cwp = nwindows - 1
        regs.write(8, 0x55)
        regs.cwp = (nwindows - 2) % nwindows
        assert regs.read(24) == 0x55


class TestControlRegisters:
    def test_reset_state_is_supervisor(self):
        ctrl = ControlRegisters()
        assert ctrl.s
        assert not ctrl.et

    def test_impl_ver_fields_read_only(self):
        ctrl = ControlRegisters()
        ctrl.write_psr(0)
        assert (ctrl.psr >> isa.PSR_IMPL_SHIFT) & 0xF == isa.LEON_IMPL
        assert (ctrl.psr >> isa.PSR_VER_SHIFT) & 0xF == isa.LEON_VER

    def test_cwp_wraps_modulo_nwindows(self):
        ctrl = ControlRegisters(nwindows=8)
        ctrl.cwp = 9
        assert ctrl.cwp == 1

    def test_icc_set_and_read(self):
        ctrl = ControlRegisters()
        ctrl.set_icc(1, 0, 1, 0)
        assert ctrl.icc == (1, 0, 1, 0)
        ctrl.set_icc(0, 1, 0, 1)
        assert ctrl.icc == (0, 1, 0, 1)

    def test_pil_field(self):
        ctrl = ControlRegisters()
        ctrl.pil = 0xA
        assert ctrl.pil == 0xA
        assert ctrl.s  # untouched

    def test_et_toggle(self):
        ctrl = ControlRegisters()
        ctrl.et = True
        assert ctrl.et
        ctrl.et = False
        assert not ctrl.et

    def test_ps_tracks_previous_supervisor(self):
        ctrl = ControlRegisters()
        ctrl.ps = True
        assert ctrl.ps
        ctrl.ps = False
        assert not ctrl.ps

    def test_tbr_tba_and_tt_fields(self):
        ctrl = ControlRegisters()
        ctrl.tba = 0x4000_0000
        ctrl.tt = 0x2A
        assert ctrl.tba == 0x4000_0000
        assert ctrl.tt == 0x2A
        assert ctrl.tbr == 0x4000_02A0

    def test_tba_ignores_low_bits(self):
        ctrl = ControlRegisters()
        ctrl.tba = 0x1234_5FFF
        assert ctrl.tba == 0x1234_5000

    def test_write_psr_sets_fields(self):
        ctrl = ControlRegisters()
        ctrl.write_psr(0xE3)  # S|PS|ET, CWP=3
        assert ctrl.s and ctrl.ps and ctrl.et
        assert ctrl.cwp == 3
