"""Unit tests for the functional fast path: FastMemory semantics and the
FunctionalUnit's architectural equivalence to the IntegerUnit on small,
pinned programs (the randomized version of the same claim lives in
``tests/difftest``)."""

from __future__ import annotations

import pytest

from repro.core.sim import Simulator
from repro.cpu import IntegerUnit
from repro.cpu.fastpath import FastMemory, FunctionalUnit
from repro.mem.interface import BusError, FlatMemory
from tests.conftest import CODE_BASE, RAM_BASE, RAM_SIZE, STACK_TOP, build


class _RecordingPort:
    """MemoryPort stub that logs accesses and answers with a constant."""

    def __init__(self, value: int = 0xA5A5A5A5):
        self.value = value
        self.reads: list[tuple[int, int]] = []
        self.writes: list[tuple[int, int, int]] = []

    def read(self, address, size):
        self.reads.append((address, size))
        return self.value & ((1 << (8 * size)) - 1), 3  # waits discarded

    def write(self, address, size, value):
        self.writes.append((address, size, value))
        return 0


class TestFastMemory:
    def _mem(self):
        mem = FastMemory()
        self.ram = bytearray(0x100)
        self.rom = bytearray(b"\xde\xad\xbe\xef" * 8)
        self.port = _RecordingPort()
        mem.add_region(0x4000_0000, self.ram, name="ram")
        mem.add_region(0x0, self.rom, writable=False, name="rom")
        mem.add_mmio(0x8000_0000, 0x100, self.port, name="apb")
        return mem

    def test_ram_read_write_big_endian(self):
        mem = self._mem()
        mem.write(0x4000_0010, 4, 0x11223344)
        assert self.ram[0x10:0x14] == b"\x11\x22\x33\x44"
        assert mem.read(0x4000_0012, 2) == 0x3344

    def test_rom_is_readable_but_not_writable(self):
        mem = self._mem()
        assert mem.read(0x0, 4) == 0xDEADBEEF
        with pytest.raises(BusError):
            mem.write(0x0, 4, 1)

    def test_zero_copy_aliasing(self):
        """Writes through FastMemory are visible in the shared buffer
        and vice versa — no coherence step between the engines."""
        mem = self._mem()
        self.ram[0x20:0x24] = b"\x01\x02\x03\x04"
        assert mem.read(0x4000_0020, 4) == 0x01020304

    def test_mmio_routing_discards_waits(self):
        mem = self._mem()
        assert mem.read(0x8000_0070, 4) == 0xA5A5A5A5
        mem.write(0x8000_0070, 1, 0x42)
        assert self.port.reads == [(0x8000_0070, 4)]
        assert self.port.writes == [(0x8000_0070, 1, 0x42)]

    def test_unmapped_raises_bus_error(self):
        mem = self._mem()
        with pytest.raises(BusError):
            mem.read(0x9000_0000, 4)
        with pytest.raises(BusError):
            mem.write(0x9000_0000, 4, 0)

    def test_read_code_flags_ram_vs_mmio(self):
        mem = self._mem()
        assert mem.read_code(0x0) == (0xDEADBEEF, True)
        word, from_ram = mem.read_code(0x8000_0000)
        assert not from_ram

    def test_straddling_region_end_is_unmapped(self):
        mem = self._mem()
        with pytest.raises(BusError):
            mem.read(0x4000_00FE, 4)  # last 2 bytes + 2 beyond

    def test_straddling_mmio_end_faults_without_device_access(self):
        """Regression: a multi-byte access whose first byte is inside an
        MMIO window but whose tail runs past it must fault — it used to
        be routed to the device port."""
        mem = self._mem()
        with pytest.raises(BusError):
            mem.read(0x8000_00FE, 4)
        with pytest.raises(BusError):
            mem.write(0x8000_00FE, 4, 0)
        with pytest.raises(BusError):
            mem.read_code(0x8000_00FE)
        assert self.port.reads == []
        assert self.port.writes == []
        # the last fully-contained word still works
        assert mem.read(0x8000_00FC, 4) == 0xA5A5A5A5

    def test_read_code_ram_probes_only_byte_regions(self):
        """The block translator's fetch probe: RAM/ROM words come back,
        MMIO and unmapped space return None without touching devices."""
        mem = self._mem()
        assert mem.read_code_ram(0x0) == 0xDEADBEEF
        assert mem.read_code_ram(0x8000_0000) is None
        assert mem.read_code_ram(0x9000_0000) is None
        assert mem.read_code_ram(0x4000_00FE) is None  # straddles end
        assert self.port.reads == []


def _run_both(source: str, max_instructions: int = 10_000):
    """Run a standalone program on a fresh IU and a fresh FunctionalUnit
    over identical flat memory; returns both engines."""
    image = build(source)

    iu_mem = FlatMemory(size=RAM_SIZE, base=RAM_BASE)
    fast_buf = bytearray(RAM_SIZE)
    for base, blob in image.segments.items():
        iu_mem.load(base, blob)
        fast_buf[base - RAM_BASE:base - RAM_BASE + len(blob)] = blob

    iu = IntegerUnit(iu_mem, iu_mem, reset_pc=image.entry)
    iu.regs.write(14, STACK_TOP)

    fast_mem = FastMemory()
    fast_mem.add_region(RAM_BASE, fast_buf, name="ram")
    fast = FunctionalUnit(fast_mem, reset_pc=image.entry)
    fast.regs.write(14, STACK_TOP)

    done = image.symbols["done"]
    iu.run(max_instructions=max_instructions, until_pc=done)
    fast.run(max_instructions=max_instructions, until_pc=done)
    return iu, fast


SMALL_PROGRAM = """
    .text
    .global _start
_start:
    set 1000, %o0
    set 7, %o1
    udiv %o0, %o1, %o2      ! 142
    smul %o2, %o1, %o3      ! 994
    subcc %o0, %o3, %o4     ! 6, flags set
    bne,a taken
    sll %o4, 2, %o5         ! annul-candidate delay slot (executed)
    xor %o5, %o5, %o5
taken:
    save %sp, -96, %sp
    add %i2, %i3, %l0
    restore
done:
    nop
"""


class TestFunctionalUnitParity:
    def test_registers_and_flags_match_iu(self):
        iu, fast = _run_both(SMALL_PROGRAM)
        for reg in range(32):
            assert fast.regs.read(reg) == iu.regs.read(reg), f"reg {reg}"
        assert fast.ctrl.psr == iu.ctrl.psr
        assert fast.ctrl.y == iu.ctrl.y
        assert fast.instret == iu.instret
        assert fast.annulled_slots == iu.annulled_slots

    def test_functional_cycles_count_steps_not_timing(self):
        _, fast = _run_both(SMALL_PROGRAM)
        assert fast.cycles == fast.instret + fast.annulled_slots

    def test_decode_memo_invalidated_by_store(self):
        """Self-modifying code: a store over an already-executed PC must
        drop the per-PC decode memo (write-invalidate contract)."""
        source = f"""
    .text
    .global _start
_start:
    set patch, %o0
    set target, %o1
    ld [%o0], %o2
    st %o2, [%o1]           ! overwrite 'add 1' with 'add 2'
    set 3, %l1
loop:
    deccc %l1
target:
    add %g3, 1, %g3         ! patched to add 2 after first pass
    bg loop
    nop
done:
    nop
patch:
    add %g3, 2, %g3
"""
        iu, fast = _run_both(source)
        assert fast.regs.read(3) == iu.regs.read(3)

    def test_flush_clears_decode_memo(self):
        mem = FastMemory()
        mem.add_region(RAM_BASE, bytearray(0x1000), name="ram")
        fast = FunctionalUnit(mem, reset_pc=RAM_BASE)
        fast._inst_cache[RAM_BASE] = object()
        fast.flush_icache()
        assert not fast._inst_cache

    def test_memo_cap_clears_wholesale_at_capacity(self):
        """The per-PC decode memo is bounded at MEMO_CAPACITY; hitting
        the bound clears it wholesale before memoizing the new PC."""
        from repro.cpu.fastpath import MEMO_CAPACITY

        assert MEMO_CAPACITY == 1 << 16
        mem = FastMemory()
        buf = bytearray(0x1000)
        buf[0:4] = (0x01000000).to_bytes(4, "big")  # nop
        mem.add_region(RAM_BASE, buf, name="ram")
        fast = FunctionalUnit(mem, reset_pc=RAM_BASE)
        fast._inst_cache.update(
            (i, None) for i in range(MEMO_CAPACITY))
        fast.step()
        assert len(fast._inst_cache) == 1
        assert RAM_BASE in fast._inst_cache

    def test_run_contract_both_paths(self):
        """run() without until_pc executes exactly the budget and
        returns; with until_pc it raises WatchdogExpired on exhaustion
        — code and docstring agree (the docstring used to promise a
        watchdog on both paths)."""
        from repro.cpu.traps import WatchdogExpired

        src = """
    .text
    .global _start
_start:
    b _start
    add %g1, 1, %g1
done:
    nop
"""
        image = build(src)
        buf = bytearray(RAM_SIZE)
        for base, blob in image.segments.items():
            buf[base - RAM_BASE:base - RAM_BASE + len(blob)] = blob
        mem = FastMemory()
        mem.add_region(RAM_BASE, buf, name="ram")
        fast = FunctionalUnit(mem, reset_pc=image.entry)
        assert fast.run(max_instructions=40) == 40  # silent return
        assert fast.cycles == 40
        with pytest.raises(WatchdogExpired):
            fast.run(max_instructions=40, until_pc=image.symbols["done"])


class TestSimulatorIntegration:
    def test_functional_unit_shares_architectural_state(self):
        sim = Simulator(capture_memory_trace=False, obs=False)
        fast = sim.functional_unit()
        assert fast.regs is sim.cpu.regs
        assert fast.ctrl is sim.cpu.ctrl
        fast.regs.write(9, 0x1234)
        assert sim.cpu.regs.read(9) == 0x1234

    def test_functional_unit_sees_simulator_memory_map(self):
        sim = Simulator(capture_memory_trace=False, obs=False)
        fast = sim.functional_unit()
        memmap = sim.memmap
        # PROM readable, not writable
        assert fast.mem.read(memmap.prom_base, 4) == \
            int.from_bytes(sim.rom_info.image[:4], "big")
        with pytest.raises(BusError):
            fast.mem.write(memmap.prom_base, 4, 0)
        # SRAM aliases the SramBank buffer
        fast.mem.write(memmap.sram_base + 0x100, 4, 0xCAFEBABE)
        assert sim.sram.data[0x100:0x104] == b"\xca\xfe\xba\xbe"
        # APB MMIO reaches the UART (status: TX empty)
        from repro.mem.memmap import UART_OFFSET
        status = fast.mem.read(memmap.apb_base + UART_OFFSET + 4, 4)
        assert status & 0x6
