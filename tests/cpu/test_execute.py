"""Instruction-semantics tests: each exercises one behaviour through
real assembled SPARC code running on the integer unit."""

import pytest

from repro.cpu import traps
from repro.cpu.isa import Trap
from repro.utils import u32

from tests.conftest import build, make_iu, run_source


def regval(source_body: str, reg: str = "%o0", **kwargs) -> int:
    """Run a fragment and return a register value at the `done` label."""
    source = f"""
    .text
    .global _start
_start:
{source_body}
done:
    ba done
    nop
"""
    iu, _mem, _syms = run_source(source, **kwargs)
    from repro.toolchain.asm.parser import parse_register

    return iu.regs.read(parse_register(reg))


class TestArithmetic:
    def test_add(self):
        assert regval("    mov 20, %o1\n    add %o1, 22, %o0") == 42

    def test_add_register_operands(self):
        assert regval("""
    mov 100, %o1
    mov 55, %o2
    add %o1, %o2, %o0""") == 155

    def test_add_wraps_32_bits(self):
        assert regval("""
    set 0xffffffff, %o1
    add %o1, 1, %o0""") == 0

    def test_sub(self):
        assert regval("    mov 50, %o1\n    sub %o1, 8, %o0") == 42

    def test_sub_negative_result(self):
        assert regval("    mov 5, %o1\n    sub %o1, 9, %o0") == u32(-4)

    def test_addx_uses_carry(self):
        # 0xFFFFFFFF + 1 sets C; addx adds it in.
        assert regval("""
    set 0xffffffff, %o1
    addcc %o1, 1, %o2
    mov 10, %o3
    addx %o3, 0, %o0""") == 11

    def test_subx_borrows(self):
        # 0 - 1 sets C (borrow); subx subtracts it.
        assert regval("""
    mov 0, %o1
    subcc %o1, 1, %o2
    mov 10, %o3
    subx %o3, 0, %o0""") == 9

    def test_addcc_sets_zero_flag(self):
        iu, _, _ = run_source("""
    .text
    .global _start
_start:
    mov 5, %o1
    subcc %o1, 5, %g0
done:
    ba done
    nop
""")
        n, z, v, c = iu.ctrl.icc
        assert (n, z, v, c) == (0, 1, 0, 0)

    def test_addcc_overflow_flag(self):
        iu, _, _ = run_source("""
    .text
    .global _start
_start:
    set 0x7fffffff, %o1
    addcc %o1, 1, %o0
done:
    ba done
    nop
""")
        n, z, v, c = iu.ctrl.icc
        assert v == 1 and n == 1 and c == 0

    def test_subcc_carry_is_borrow(self):
        iu, _, _ = run_source("""
    .text
    .global _start
_start:
    mov 3, %o1
    subcc %o1, 7, %o0
done:
    ba done
    nop
""")
        assert iu.ctrl.icc[3] == 1  # C = borrow


class TestLogicAndShifts:
    def test_and(self):
        assert regval("    set 0xff0f, %o1\n    and %o1, 0xf0, %o0") == 0x0
        assert regval("    set 0xffff, %o1\n    and %o1, 0xf0, %o0") == 0xF0

    def test_andn(self):
        assert regval("    set 0xff, %o1\n    andn %o1, 0x0f, %o0") == 0xF0

    def test_or_orn(self):
        assert regval("    mov 0x10, %o1\n    or %o1, 0x01, %o0") == 0x11
        assert regval("    mov 0, %o1\n    orn %o1, 0, %o0") == 0xFFFF_FFFF

    def test_xor_xnor(self):
        assert regval("    set 0xff, %o1\n    xor %o1, 0x0f, %o0") == 0xF0
        assert regval("""
    set 0xff, %o1
    xnor %o1, 0x0f, %o0""") == u32(~0xF0)

    def test_sll(self):
        assert regval("    mov 1, %o1\n    sll %o1, 12, %o0") == 0x1000

    def test_srl_is_logical(self):
        assert regval("""
    set 0x80000000, %o1
    srl %o1, 4, %o0""") == 0x0800_0000

    def test_sra_is_arithmetic(self):
        assert regval("""
    set 0x80000000, %o1
    sra %o1, 4, %o0""") == 0xF800_0000

    def test_shift_count_masked_to_5_bits(self):
        # shift by 33 behaves as shift by 1
        assert regval("""
    mov 2, %o1
    mov 33, %o2
    sll %o1, %o2, %o0""") == 4

    def test_logic_cc_clears_v_and_c(self):
        iu, _, _ = run_source("""
    .text
    .global _start
_start:
    set 0x7fffffff, %o1
    addcc %o1, 1, %o2     ! sets V
    orcc %o1, 0, %o0
done:
    ba done
    nop
""")
        n, z, v, c = iu.ctrl.icc
        assert (v, c) == (0, 0)


class TestMultiplyDivide:
    def test_umul(self):
        assert regval("""
    mov 1000, %o1
    mov 1000, %o2
    umul %o1, %o2, %o0""") == 1_000_000

    def test_umul_writes_high_bits_to_y(self):
        iu, _, _ = run_source("""
    .text
    .global _start
_start:
    set 0x10000, %o1
    umul %o1, %o1, %o2
    rd %y, %o0
done:
    ba done
    nop
""")
        assert iu.regs.read(8) == 1  # 2^32 >> 32

    def test_smul_signed(self):
        assert regval("""
    mov 100, %o1
    sub %g0, 3, %o2      ! -3
    smul %o1, %o2, %o0""") == u32(-300)

    def test_udiv(self):
        assert regval("""
    wr %g0, 0, %y
    nop
    nop
    nop
    mov 100, %o1
    udiv %o1, 7, %o0""") == 14

    def test_sdiv_truncates_toward_zero(self):
        assert regval("""
    sub %g0, 7, %o1       ! -7
    sra %o1, 31, %o2
    wr %o2, 0, %y
    nop
    nop
    nop
    mov 2, %o3
    sdiv %o1, %o3, %o0""") == u32(-3)

    def test_udiv_uses_y_as_high_bits(self):
        # Y:rs1 = 0x1_00000000; / 2 = 0x80000000
        assert regval("""
    wr %g0, 1, %y
    nop
    nop
    nop
    mov 0, %o1
    udiv %o1, 2, %o0""") == 0x8000_0000

    def test_udiv_overflow_saturates(self):
        # Y=2 gives quotient 2^33 / 2 > 32 bits: result clamps.
        assert regval("""
    wr %g0, 2, %y
    nop
    nop
    nop
    mov 0, %o1
    udiv %o1, 2, %o0""") == 0xFFFF_FFFF

    def test_division_by_zero_traps(self):
        iu, _ = make_iu("""
    .text
    .global _start
_start:
    mov 1, %o1
    udiv %o1, %g0, %o0
""")
        with pytest.raises(traps.ErrorMode) as err:
            iu.run(max_instructions=10)
        assert err.value.tt == Trap.DIVISION_BY_ZERO

    def test_mulscc_step_sequence_multiplies(self):
        """32 MULSCC steps compute a 32x32 multiply (the pre-UMUL idiom)."""
        body = """
    mov 13, %o1         ! multiplier -> Y
    wr %o1, 0, %y
    nop
    nop
    nop
    andcc %g0, %g0, %o2 ! clear partial product and flags
"""
        body += "    mulscc %o2, 11, %o2\n" * 32
        body += "    mulscc %o2, %g0, %o2\n    rd %y, %o0"
        assert regval(body) == 13 * 11


class TestTaggedArithmetic:
    def test_taddcc_sets_overflow_on_tag_bits(self):
        iu, _, _ = run_source("""
    .text
    .global _start
_start:
    mov 5, %o1            ! low 2 bits nonzero -> tagged overflow
    taddcc %o1, 4, %o0
done:
    ba done
    nop
""")
        assert iu.ctrl.icc[2] == 1  # V set

    def test_taddcctv_traps_on_tagged_value(self):
        iu, _ = make_iu("""
    .text
    .global _start
_start:
    mov 5, %o1
    taddcctv %o1, 4, %o0
""")
        with pytest.raises(traps.ErrorMode) as err:
            iu.run(max_instructions=10)
        assert err.value.tt == Trap.TAG_OVERFLOW

    def test_taddcc_clean_tags_no_overflow(self):
        iu, _, _ = run_source("""
    .text
    .global _start
_start:
    mov 4, %o1
    taddcc %o1, 8, %o0
done:
    ba done
    nop
""")
        assert iu.ctrl.icc[2] == 0
        assert iu.regs.read(8) == 12
