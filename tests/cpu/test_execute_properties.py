"""Property-based tests of instruction semantics against a Python oracle.

Each property drives the real decode→execute path with randomly generated
operand values and compares architectural results to independent Python
arithmetic — the style of differential testing used to qualify ISA
simulators.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.decode import decode
from repro.cpu.iu import IntegerUnit
from repro.cpu.isa import Cond, Op3
from repro.cpu.execute import evaluate_cond
from repro.mem.interface import FlatMemory
from repro.toolchain.asm import encoder
from repro.utils import s32, u32

u32s = st.integers(min_value=0, max_value=0xFFFF_FFFF)
simm13s = st.integers(min_value=-4096, max_value=4095)
regs = st.integers(min_value=1, max_value=7)  # globals, easy to poke


def fresh_iu() -> IntegerUnit:
    mem = FlatMemory(size=4096, base=0)
    return IntegerUnit(mem, mem, reset_pc=0)


def run_one(iu: IntegerUnit, word: int) -> None:
    """Execute a single encoded instruction on the IU in place."""
    iu._transfer_target = None
    iu._mem_extra = 0
    iu._dispatch(decode(word))


class TestAluProperties:
    @given(a=u32s, b=u32s)
    def test_add_matches_modular_arithmetic(self, a, b):
        iu = fresh_iu()
        iu.regs.write(1, a)
        iu.regs.write(2, b)
        run_one(iu, encoder.arith_reg(Op3.ADD, 3, 1, 2))
        assert iu.regs.read(3) == u32(a + b)

    @given(a=u32s, b=u32s)
    def test_sub_matches_modular_arithmetic(self, a, b):
        iu = fresh_iu()
        iu.regs.write(1, a)
        iu.regs.write(2, b)
        run_one(iu, encoder.arith_reg(Op3.SUB, 3, 1, 2))
        assert iu.regs.read(3) == u32(a - b)

    @given(a=u32s, imm=simm13s)
    def test_add_immediate_sign_extends(self, a, imm):
        iu = fresh_iu()
        iu.regs.write(1, a)
        run_one(iu, encoder.arith_imm(Op3.ADD, 3, 1, imm))
        assert iu.regs.read(3) == u32(a + imm)

    @given(a=u32s, b=u32s)
    def test_addcc_flags_model(self, a, b):
        iu = fresh_iu()
        iu.regs.write(1, a)
        iu.regs.write(2, b)
        run_one(iu, encoder.arith_reg(Op3.ADDCC, 3, 1, 2))
        result = u32(a + b)
        n, z, v, c = iu.ctrl.icc
        assert n == (result >> 31)
        assert z == (1 if result == 0 else 0)
        assert c == (1 if a + b > 0xFFFF_FFFF else 0)
        assert v == (1 if (s32(a) + s32(b)) != s32(result) else 0)

    @given(a=u32s, b=u32s)
    def test_subcc_flags_model(self, a, b):
        iu = fresh_iu()
        iu.regs.write(1, a)
        iu.regs.write(2, b)
        run_one(iu, encoder.arith_reg(Op3.SUBCC, 3, 1, 2))
        result = u32(a - b)
        n, z, v, c = iu.ctrl.icc
        assert n == (result >> 31)
        assert z == (1 if result == 0 else 0)
        assert c == (1 if a < b else 0)
        assert v == (1 if (s32(a) - s32(b)) != s32(result) else 0)

    @given(a=u32s, b=u32s)
    def test_logic_ops(self, a, b):
        for op3, fn in [(Op3.AND, lambda x, y: x & y),
                        (Op3.OR, lambda x, y: x | y),
                        (Op3.XOR, lambda x, y: x ^ y),
                        (Op3.ANDN, lambda x, y: x & ~y),
                        (Op3.ORN, lambda x, y: x | ~y),
                        (Op3.XNOR, lambda x, y: x ^ ~y)]:
            iu = fresh_iu()
            iu.regs.write(1, a)
            iu.regs.write(2, b)
            run_one(iu, encoder.arith_reg(op3, 3, 1, 2))
            assert iu.regs.read(3) == u32(fn(a, b)), op3

    @given(a=u32s, count=st.integers(min_value=0, max_value=31))
    def test_shifts(self, a, count):
        for op3, fn in [(Op3.SLL, lambda x: u32(x << count)),
                        (Op3.SRL, lambda x: x >> count),
                        (Op3.SRA, lambda x: u32(s32(x) >> count))]:
            iu = fresh_iu()
            iu.regs.write(1, a)
            iu.regs.write(2, count)
            run_one(iu, encoder.arith_reg(op3, 3, 1, 2))
            assert iu.regs.read(3) == fn(a), op3

    @given(a=u32s, b=u32s)
    def test_umul_full_64_bit_product(self, a, b):
        iu = fresh_iu()
        iu.regs.write(1, a)
        iu.regs.write(2, b)
        run_one(iu, encoder.arith_reg(Op3.UMUL, 3, 1, 2))
        product = a * b
        assert iu.regs.read(3) == u32(product)
        assert iu.ctrl.y == (product >> 32)

    @given(a=u32s, b=u32s)
    def test_smul_full_64_bit_product(self, a, b):
        iu = fresh_iu()
        iu.regs.write(1, a)
        iu.regs.write(2, b)
        run_one(iu, encoder.arith_reg(Op3.SMUL, 3, 1, 2))
        product = (s32(a) * s32(b)) & 0xFFFF_FFFF_FFFF_FFFF
        assert iu.regs.read(3) == u32(product)
        assert iu.ctrl.y == (product >> 32)

    @given(dividend=u32s, divisor=st.integers(min_value=1,
                                              max_value=0xFFFF_FFFF))
    def test_udiv_with_zero_y(self, dividend, divisor):
        iu = fresh_iu()
        iu.ctrl.y = 0
        iu.regs.write(1, dividend)
        iu.regs.write(2, divisor)
        run_one(iu, encoder.arith_reg(Op3.UDIV, 3, 1, 2))
        assert iu.regs.read(3) == min(dividend // divisor, 0xFFFF_FFFF)


class TestConditionCodeProperties:
    @given(a=u32s, b=u32s)
    def test_branch_conditions_match_comparison_semantics(self, a, b):
        """After cmp a, b the 16 conditions must agree with Python."""
        iu = fresh_iu()
        iu.regs.write(1, a)
        iu.regs.write(2, b)
        run_one(iu, encoder.arith_reg(Op3.SUBCC, 0, 1, 2))
        n, z, v, c = iu.ctrl.icc
        sa, sb = s32(a), s32(b)
        expect = {
            Cond.A: True, Cond.N: False,
            Cond.E: a == b, Cond.NE: a != b,
            Cond.L: sa < sb, Cond.LE: sa <= sb,
            Cond.G: sa > sb, Cond.GE: sa >= sb,
            Cond.CS: a < b, Cond.CC: a >= b,
            Cond.LEU: a <= b, Cond.GU: a > b,
            Cond.NEG: u32(a - b) >> 31 == 1,
            Cond.POS: u32(a - b) >> 31 == 0,
        }
        for cond, expected in expect.items():
            assert evaluate_cond(int(cond), n, z, v, c) == expected, cond

    @given(n=st.booleans(), z=st.booleans(), v=st.booleans(),
           c=st.booleans())
    def test_conditions_come_in_complement_pairs(self, n, z, v, c):
        pairs = [(Cond.E, Cond.NE), (Cond.L, Cond.GE), (Cond.LE, Cond.G),
                 (Cond.LEU, Cond.GU), (Cond.CS, Cond.CC),
                 (Cond.NEG, Cond.POS), (Cond.VS, Cond.VC), (Cond.A, Cond.N)]
        for cond, complement in pairs:
            assert evaluate_cond(int(cond), n, z, v, c) != \
                evaluate_cond(int(complement), n, z, v, c)


class TestWindowProperties:
    @given(values=st.lists(u32s, min_size=1, max_size=6),
           nwindows=st.sampled_from([4, 8, 16]))
    @settings(max_examples=25)
    def test_save_restore_roundtrip_preserves_outs(self, values, nwindows):
        """Values in %o regs survive save/restore pairs (up to the window
        count, with WIM clear so no traps fire)."""
        mem = FlatMemory(size=4096, base=0)
        iu = IntegerUnit(mem, mem, nwindows=nwindows, reset_pc=0)
        iu.ctrl.wim = 0
        for index, value in enumerate(values):
            iu.regs.write(8 + index, value)
        depth = nwindows - 1
        for _ in range(depth):
            run_one(iu, encoder.arith_imm(Op3.SAVE, 14, 14, -96))
        for _ in range(depth):
            run_one(iu, encoder.arith_imm(Op3.RESTORE, 0, 0, 0))
        for index, value in enumerate(values):
            assert iu.regs.read(8 + index) == value
