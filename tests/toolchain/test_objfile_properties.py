"""Object-format and image properties: flatten, scripts, expressions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.toolchain import assemble, link
from repro.toolchain.asm.parser import parse_expr
from repro.toolchain.linker import Linker, LinkError, MemoryMapScript
from repro.toolchain.objfile import Image, Section


class TestImage:
    def test_flatten_gap_fill(self):
        image = Image(segments={0x100: b"AA", 0x110: b"BB"},
                      symbols={}, entry=0x100)
        base, blob = image.flatten()
        assert base == 0x100
        assert len(blob) == 0x12
        assert blob[0:2] == b"AA"
        assert blob[0x10:0x12] == b"BB"
        assert blob[2:0x10] == bytes(14)

    def test_flatten_custom_fill(self):
        image = Image(segments={0: b"\x01", 4: b"\x02"}, symbols={}, entry=0)
        _, blob = image.flatten(fill=0xEE)
        assert blob == b"\x01\xee\xee\xee\x02"

    def test_empty_image(self):
        image = Image(segments={}, symbols={}, entry=0)
        assert image.flatten() == (0, b"")
        assert image.start == 0 and image.end == 0

    @given(segments=st.dictionaries(
        st.integers(min_value=0, max_value=0x1000).map(lambda v: v * 4),
        st.binary(min_size=1, max_size=64), min_size=1, max_size=6))
    @settings(max_examples=40)
    def test_flatten_preserves_every_segment(self, segments):
        # Discard overlapping segment sets.
        spans = sorted((base, base + len(data))
                       for base, data in segments.items())
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            if s2 < e1:
                return
        image = Image(segments=segments, symbols={}, entry=0)
        base, blob = image.flatten()
        for seg_base, data in segments.items():
            offset = seg_base - base
            assert blob[offset:offset + len(data)] == data


class TestSection:
    def test_word_patching(self):
        section = Section(".text")
        section.append_word(0x11223344)
        section.append_word(0xAABBCCDD)
        section.patch_word(4, 0x55667788)
        assert section.word_at(0) == 0x11223344
        assert section.word_at(4) == 0x55667788
        assert section.size == 8


class TestMemoryMapScript:
    def test_explicit_bases(self):
        script = MemoryMapScript(placements={".text": 0x1000,
                                             ".data": 0x8000})
        image = Linker(script).link([assemble("""
_start:
    nop
    .data
v: .word 1
""")])
        assert image.symbols["_start"] == 0x1000
        assert image.symbols["v"] == 0x8000

    def test_alignment_applied_to_follow_on(self):
        script = MemoryMapScript(placements={".text": 0x1001,
                                             ".data": ".text"}, align=16)
        image = Linker(script).link([assemble("""
_start:
    nop
    .data
v: .word 1
""")])
        assert image.symbols["_start"] % 16 == 0
        assert image.symbols["v"] % 16 == 0

    def test_unknown_predecessor_rejected(self):
        script = MemoryMapScript(placements={".data": ".nonexistent"})
        with pytest.raises(LinkError):
            Linker(script).link([assemble("    .data\n    .word 1")])

    def test_unplaced_section_without_cursor_rejected(self):
        script = MemoryMapScript(placements={})
        with pytest.raises(LinkError):
            Linker(script).link([assemble("_start:\n    nop")])


class TestExpressionProperties:
    @given(value=st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_decimal_roundtrip(self, value):
        assert parse_expr(str(value)).constant() == value

    @given(value=st.integers(min_value=0, max_value=2**32 - 1))
    def test_hex_roundtrip(self, value):
        assert parse_expr(hex(value)).constant() == value

    @given(a=st.integers(-1000, 1000), b=st.integers(-1000, 1000),
           c=st.integers(1, 16))
    def test_arithmetic_matches_python(self, a, b, c):
        assert parse_expr(f"{a} + {b} * {c}").constant() == a + b * c
        assert parse_expr(f"({a} + {b}) * {c}").constant() == (a + b) * c
        assert parse_expr(f"{a} - {b} - {c}").constant() == a - b - c

    @given(value=st.integers(0, 0xFFFF), shift=st.integers(0, 15))
    def test_shifts_and_masks(self, value, shift):
        assert parse_expr(f"{value} << {shift}").constant() == value << shift
        assert parse_expr(f"({value} >> {shift}) & 0xFF").constant() == \
            (value >> shift) & 0xFF

    def test_symbolic_addend_combinations(self):
        expr = parse_expr("base + 4 * 8 - 2")
        assert expr.symbol == "base"
        assert expr.addend == 30


class TestGeneratorDeterminism:
    def test_sweep_is_reproducible(self):
        """Two independent sweeps measure identical cycle counts — the
        whole model (CPU, caches, protocol, synthesis) is deterministic."""
        from repro.core import ArchitectureGenerator, ConfigurationSpace
        from repro.toolchain.driver import compile_c_program

        image = compile_c_program("""
int main(void) {
    int total = 0;
    for (int i = 0; i < 200; i++) total += i;
    return total;
}""")
        space = ConfigurationSpace().add_dimension("dcache_size",
                                                   [1024, 4096])

        def run():
            return [(m.config.key(), m.cycles)
                    for m in ArchitectureGenerator().sweep(
                        image, space).measurements]

        assert run() == run()
