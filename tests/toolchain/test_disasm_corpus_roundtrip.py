"""Assembler/disassembler round-trip over the difftest corpus.

Every committed regression listing is assembled, disassembled word by
word (absolute-PC forms), and the disassembly is reassembled at the
same base — the two text segments must be byte-identical.  This pins
both directions of the toolchain against real programs, not just the
property-test's synthetic single instructions, and is exactly the
guarantee the binary CFG builder relies on.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.cfg import text_segment
from repro.toolchain.disasm import disassemble
from repro.toolchain.driver import SourceFile, build_image

CORPUS = sorted(
    (pathlib.Path(__file__).parent.parent / "difftest" / "corpus").glob(
        "*.s"), key=lambda p: p.name)


def _build(asm_text: str, name: str):
    return build_image([SourceFile(asm_text, "asm", name)],
                       with_crt0=False, entry_symbol="_start")


def _disassemble_text(image) -> str:
    base, data = text_segment(image)
    lines = ["    .text", "    .global _start", "_start:"]
    for offset in range(0, len(data), 4):
        word = int.from_bytes(data[offset:offset + 4], "big")
        lines.append(f"    {disassemble(word, pc=base + offset)}")
    return "\n".join(lines) + "\n"


@pytest.mark.parametrize("listing", CORPUS, ids=lambda p: p.name)
def test_corpus_round_trips_byte_identical(listing):
    original = _build(listing.read_text(), listing.name)
    base, data = text_segment(original)

    recovered = _disassemble_text(original)
    rebuilt = _build(recovered, f"rt-{listing.name}")
    base2, data2 = text_segment(rebuilt)

    assert base2 == base
    assert data2 == data, (
        f"{listing.name}: round-trip changed the text segment "
        f"({len(data)} -> {len(data2)} bytes)")


def test_corpus_is_present():
    """The round-trip suite must never silently run over nothing."""
    assert len(CORPUS) >= 3


def _reassemble_one(line: str) -> bytes:
    from repro.toolchain.asm.parser import assemble

    obj = assemble(f"    .text\n    {line}\n", "one.s")
    section = obj.sections[".text"]
    assert len(section.data) == 4, f"{line!r} emitted {len(section.data)}B"
    return bytes(section.data)


@pytest.mark.parametrize("word,expected", [
    # ta 0 — TICC must render the comma/bare form, never `%g0 + 0`.
    (0x91D02000, "ta 0"),
    (0x91D02005, "ta 5"),
])
def test_ticc_renders_reassemblable_form(word, expected):
    text = disassemble(word)
    assert text == expected
    assert _reassemble_one(text) == word.to_bytes(4, "big")


def test_ticc_with_base_register_round_trips():
    word = int.from_bytes(_reassemble_one("ta %l0, 3"), "big")
    text = disassemble(word)
    assert text == "ta %l0, 3"
    assert _reassemble_one(text) == word.to_bytes(4, "big")


@pytest.mark.parametrize("word", [
    0x1F800000,  # FBfcc (op2=6) — fp disabled on this core
    0x1FC00000,  # CBccc (op2=7) — cp disabled
])
def test_fp_cp_branches_render_as_word_pseudo_op(word):
    text = disassemble(word)
    assert text.startswith(".word 0x"), text
    assert _reassemble_one(text) == word.to_bytes(4, "big")


def test_reassembled_listing_parses_every_line():
    """Every disassembled line is accepted by the assembler — no
    rendering falls back to a form the parser rejects (the TICC and
    FBfcc gaps this suite was added to pin down)."""
    listing = CORPUS[0]
    original = _build(listing.read_text(), listing.name)
    text = _disassemble_text(original)
    # ta/unimp/.word forms all appear via the corpus' trap exits.
    rebuilt = _build(text, "parse-check.s")
    assert text_segment(rebuilt)[1] == text_segment(original)[1]
