"""Linker and objcopy tests: placement, relocation, multi-object links."""

import pytest

from repro.toolchain import assemble, link
from repro.toolchain.linker import Linker, MemoryMapScript
from repro.toolchain.objcopy import hexdump, to_binary, to_words
from repro.toolchain.objfile import LinkError


class TestPlacement:
    def test_text_at_requested_base(self):
        image = link([assemble("_start:\n    nop")],
                     MemoryMapScript.default(0x4000_2000))
        assert image.start == 0x4000_2000

    def test_data_follows_text(self):
        image = link([assemble("""
_start:
    nop
    .data
value: .word 7
""")], MemoryMapScript.default(0x4000_1000))
        assert image.symbols["value"] == 0x4000_1008  # 4 text bytes, aligned 8

    def test_chain_skips_empty_sections(self):
        """.data placed after .rodata even when .rodata is empty."""
        image = link([assemble("""
_start:
    nop
    .data
v: .word 1
""")], MemoryMapScript.default(0x100))
        assert "v" in image.symbols

    def test_overlap_detection(self):
        script = MemoryMapScript(placements={".text": 0x1000,
                                             ".data": 0x1000})
        with pytest.raises(LinkError):
            link([assemble("_start:\n    nop\n    .data\n    .word 1")],
                 script)

    def test_entry_prefers_start_symbol(self):
        image = link([assemble("""
    nop
    .global _start
_start:
    nop
""")], MemoryMapScript.default(0x4000_1000))
        assert image.entry == 0x4000_1004

    def test_entry_falls_back_to_text_base(self):
        image = link([assemble("main:\n    nop")],
                     MemoryMapScript.default(0x4000_1000),
                     entry_symbol="_start")
        assert image.entry == 0x4000_1000


class TestRelocations:
    def test_hi_lo_pair(self):
        image = link([assemble("""
_start:
    sethi %hi(value), %o0
    or %o0, %lo(value), %o0
    .data
value: .word 0
""")], MemoryMapScript.default(0x4000_1000))
        address = image.symbols["value"]
        base, blob = to_binary(image)
        first = int.from_bytes(blob[0:4], "big")
        second = int.from_bytes(blob[4:8], "big")
        assert (first & 0x3FFFFF) == address >> 10
        assert (second & 0x3FF) == address & 0x3FF

    def test_word32_data_relocation(self):
        image = link([assemble("""
_start:
    nop
    .data
pointer: .word target
target:  .word 99
""")], MemoryMapScript.default(0x4000_1000))
        words = to_words(image)
        assert words[image.symbols["pointer"]] == image.symbols["target"]

    def test_call_across_objects(self):
        caller = assemble("""
    .global _start
_start:
    call helper
    nop
""")
        callee = assemble("""
    .global helper
helper:
    retl
    nop
""")
        image = link([caller, callee], MemoryMapScript.default(0x4000_1000))
        words = to_words(image)
        call_word = words[image.symbols["_start"]]
        disp = call_word & 0x3FFF_FFFF
        target = image.symbols["_start"] + (disp << 2)
        assert target == image.symbols["helper"]

    def test_branch_across_objects(self):
        a = assemble("""
    .global _start
_start:
    ba elsewhere
    nop
""")
        b = assemble("""
    .global elsewhere
elsewhere:
    nop
""")
        image = link([a, b], MemoryMapScript.default(0x4000_1000))
        words = to_words(image)
        branch = words[image.symbols["_start"]]
        from repro.utils import sign_extend
        disp = sign_extend(branch, 22) << 2
        assert image.symbols["_start"] + disp == image.symbols["elsewhere"]

    def test_undefined_symbol_reported(self):
        with pytest.raises(LinkError) as err:
            link([assemble("_start:\n    call missing\n    nop")],
                 MemoryMapScript.default(0x1000))
        assert "missing" in str(err.value)

    def test_duplicate_global_rejected(self):
        a = assemble(".global f\nf:\n    nop")
        b = assemble(".global f\nf:\n    nop")
        with pytest.raises(LinkError):
            link([a, b], MemoryMapScript.default(0x1000))

    def test_simm13_overflow_reported(self):
        # A symbol address never fits in 13 bits at this base.
        with pytest.raises(LinkError):
            link([assemble("""
_start:
    ld [%g0 + value], %o0
    .data
value: .word 1
""")], MemoryMapScript.default(0x4000_1000))

    def test_same_section_branch_resolved_at_assembly(self):
        obj = assemble("""
_start:
    ba out
    nop
out:
    nop
""")
        assert not obj.sections[".text"].relocations


class TestMultiObject:
    def test_sections_concatenate(self):
        a = assemble("    .data\n    .word 1")
        b = assemble("    .data\n    .word 2")
        image = link([a, b], MemoryMapScript(placements={".data": 0x2000}))
        base, blob = to_binary(image)
        assert blob == b"\x00\x00\x00\x01\x00\x00\x00\x02"

    def test_local_symbols_do_not_collide_when_different(self):
        a = assemble("alpha:\n    nop")
        b = assemble("beta:\n    nop")
        image = link([a, b], MemoryMapScript.default(0x1000))
        assert image.symbols["beta"] == image.symbols["alpha"] + 4


class TestObjcopy:
    def _image(self):
        return link([assemble("""
    .global _start
_start:
    nop
    .data
v: .word 0xAABBCCDD
""")], MemoryMapScript.default(0x4000_1000))

    def test_flatten_fills_gaps(self):
        image = self._image()
        base, blob = to_binary(image)
        assert base == 0x4000_1000
        assert len(blob) == image.end - image.start
        assert blob[:4] == b"\x01\x00\x00\x00"  # nop

    def test_to_words_big_endian(self):
        image = self._image()
        words = to_words(image)
        assert words[image.symbols["v"]] == 0xAABBCCDD

    def test_hexdump_mentions_segments(self):
        dump = hexdump(self._image())
        assert "segment 0x40001000" in dump
        assert "aa bb cc dd" in dump
