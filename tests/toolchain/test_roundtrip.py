"""Encoder → disassembler → assembler round-trip property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.decode import decode
from repro.cpu.isa import Cond, Op3, Op3Mem
from repro.toolchain.asm import assemble, encoder
from repro.toolchain.disasm import disassemble, disassemble_block

regs = st.integers(min_value=0, max_value=31)
simm13s = st.integers(min_value=-4096, max_value=4095)

# The op3 values the disassembler renders as plain three-operand ALU text.
ALU_OP3S = [
    Op3.ADD, Op3.ADDCC, Op3.ADDX, Op3.ADDXCC, Op3.SUB, Op3.SUBCC,
    Op3.SUBX, Op3.SUBXCC, Op3.AND, Op3.ANDCC, Op3.ANDN, Op3.ANDNCC,
    Op3.OR, Op3.ORCC, Op3.ORN, Op3.ORNCC, Op3.XOR, Op3.XORCC,
    Op3.XNOR, Op3.XNORCC, Op3.SLL, Op3.SRL, Op3.SRA, Op3.UMUL,
    Op3.SMUL, Op3.UMULCC, Op3.SMULCC, Op3.UDIV, Op3.SDIV,
    Op3.TADDCC, Op3.TSUBCC, Op3.MULSCC, Op3.SAVE, Op3.RESTORE,
]

MEM_OP3S = [Op3Mem.LD, Op3Mem.LDUB, Op3Mem.LDUH, Op3Mem.LDSB, Op3Mem.LDSH,
            Op3Mem.LDD, Op3Mem.ST, Op3Mem.STB, Op3Mem.STH, Op3Mem.STD,
            Op3Mem.LDSTUB, Op3Mem.SWAP]


def reassemble(text: str) -> int:
    obj = assemble(text)
    data = obj.sections[".text"].data
    assert len(data) == 4, f"'{text}' assembled to {len(data)} bytes"
    return int.from_bytes(data[:4], "big")


class TestRoundTripProperties:
    @given(op3=st.sampled_from(ALU_OP3S), rd=regs, rs1=regs, rs2=regs)
    @settings(max_examples=200)
    def test_alu_register_roundtrip(self, op3, rd, rs1, rs2):
        word = encoder.arith_reg(op3, rd, rs1, rs2)
        # Skip words the disassembler prints as synthetics (save/restore
        # render canonically and survive, so no exclusions needed).
        text = disassemble(word)
        assert reassemble(text) == word

    @given(op3=st.sampled_from(ALU_OP3S), rd=regs, rs1=regs, imm=simm13s)
    @settings(max_examples=200)
    def test_alu_immediate_roundtrip(self, op3, rd, rs1, imm):
        word = encoder.arith_imm(op3, rd, rs1, imm)
        assert reassemble(disassemble(word)) == word

    @given(op3=st.sampled_from(MEM_OP3S), rd=regs, rs1=regs, imm=simm13s)
    @settings(max_examples=200)
    def test_memory_immediate_roundtrip(self, op3, rd, rs1, imm):
        word = encoder.mem_imm(op3, rd, rs1, imm)
        assert reassemble(disassemble(word)) == word

    @given(op3=st.sampled_from(MEM_OP3S), rd=regs, rs1=regs, rs2=regs)
    @settings(max_examples=200)
    def test_memory_register_roundtrip(self, op3, rd, rs1, rs2):
        word = encoder.mem_reg(op3, rd, rs1, rs2)
        assert reassemble(disassemble(word)) == word

    @given(rd=regs, imm22=st.integers(min_value=0, max_value=0x3FFFFF))
    @settings(max_examples=200)
    def test_sethi_roundtrip(self, rd, imm22):
        word = encoder.sethi(rd, imm22)
        assert reassemble(disassemble(word)) == word

    @given(rd=regs, opf=st.integers(0, 511), rs1=regs, rs2=regs)
    @settings(max_examples=100)
    def test_custom_roundtrip(self, rd, opf, rs1, rs2):
        word = encoder.cpop1(rd, opf, rs1, rs2)
        assert reassemble(disassemble(word)) == word

    @given(word=st.integers(min_value=0, max_value=0xFFFFFFFF))
    @settings(max_examples=300)
    def test_disassembler_total(self, word):
        """Every 32-bit word disassembles to *something* without raising."""
        text = disassemble(word)
        assert isinstance(text, str) and text


class TestSpecificRenderings:
    def test_nop(self):
        assert disassemble(encoder.nop()) == "nop"

    def test_ret_retl_synthetics(self):
        assert disassemble(encoder.jmpl_imm(0, 31, 8)) == "ret"
        assert disassemble(encoder.jmpl_imm(0, 15, 8)) == "retl"

    def test_branch_with_pc_shows_target(self):
        word = encoder.branch(int(Cond.A), 4)  # +16 bytes
        assert disassemble(word, pc=0x4000_1000) == "ba 0x40001010"

    def test_call_with_pc(self):
        word = encoder.call(-2)
        assert disassemble(word, pc=0x100) == "call 0xf8"

    def test_unimp(self):
        assert disassemble(0) == "unimp 0x0"

    def test_block_listing_format(self):
        block = encoder.nop().to_bytes(4, "big") * 2
        lines = disassemble_block(block, base=0x1000)
        assert lines[0].startswith("00001000:")
        assert "nop" in lines[0]

    def test_rd_wr_forms(self):
        from repro.cpu.isa import Op3 as O
        assert disassemble(encoder.fmt3_reg(2, 3, int(O.RDPSR), 0, 0)) == \
            "rd %psr, %g3"
        word = encoder.fmt3_imm(2, 0, int(O.WRASR), 0, 5)
        assert disassemble(word) == "wr %g0, 5, %y"

    def test_negative_offset_address(self):
        text = disassemble(encoder.mem_imm(Op3Mem.LD, 8, 30, -8))
        assert text == "ld [%fp - 8], %o0" or text == "ld [%i6 - 8], %o0"
