"""Driver tests: crt0, source kinds, packetization, memory-map plumbing."""

import pytest

from repro.core.sim import simulate
from repro.mem.memmap import DEFAULT_MAP, MemoryMap
from repro.net.protocol import decode_command
from repro.toolchain.driver import (
    SourceFile,
    build_image,
    compile_c_program,
    compile_sources,
    crt0_source,
    image_to_packets,
)


class TestCrt0:
    def test_crt0_stores_result_and_exits(self):
        report = simulate(compile_c_program("int main(void) { return 55; }"))
        assert report.result_word == 55

    def test_crt0_source_references_result_addr(self):
        text = crt0_source()
        assert str(DEFAULT_MAP.result_addr) in text
        assert "ta 0" in text

    def test_entry_is_crt0_start_not_main(self):
        image = compile_c_program("int main(void) { return 0; }")
        assert image.entry == image.symbols["_start"]
        assert image.symbols["main"] > image.entry

    def test_without_crt0_entry_is_user_start(self):
        image = build_image([SourceFile("""
    .global _start
_start:
    ta 0
    nop
""", "asm")], with_crt0=False)
        assert image.entry == DEFAULT_MAP.program_base


class TestSources:
    def test_mixed_language_order_preserved(self):
        objects = compile_sources([
            SourceFile("int main(void) { return helper(); }\n"
                       "int helper(void);", "c", "a.c"),
            SourceFile(".global helper\nhelper:\n    retl\n    mov 3, %o0",
                       "asm", "b.s"),
        ])
        assert len(objects) == 3  # crt0 + 2

    def test_unknown_language_rejected(self):
        with pytest.raises(ValueError):
            compile_sources([SourceFile("x", "fortran")])

    def test_custom_text_base(self):
        image = build_image([SourceFile("int main(void){return 0;}", "c")],
                            text_base=0x4001_0000)
        assert image.start == 0x4001_0000

    def test_custom_memory_map(self):
        memmap = MemoryMap(sram_base=0x2000_0000, sram_size=0x0010_0000)
        image = compile_c_program("int main(void) { return 0; }",
                                  memmap=memmap)
        assert image.start == memmap.program_base
        assert str(memmap.result_addr) in crt0_source(memmap)


class TestPacketization:
    def test_image_to_packets_covers_whole_binary(self):
        image = compile_c_program("""
int table[100];
int main(void) { return sizeof table; }""")
        payloads = image_to_packets(image, chunk=64)
        chunks = [decode_command(p) for p in payloads]
        base, blob = image.flatten()
        assert chunks[0].address == base
        total_bytes = sum(len(c.data) for c in chunks)
        assert total_bytes == len(blob)
        assert all(c.total == len(chunks) for c in chunks)

    def test_packets_reconstruct_binary(self):
        image = compile_c_program("int main(void) { return 0x1234; }")
        base, blob = image.flatten()
        payloads = image_to_packets(image, chunk=32)
        rebuilt = bytearray(len(blob))
        for payload in payloads:
            chunk = decode_command(payload)
            offset = chunk.address - base
            rebuilt[offset:offset + len(chunk.data)] = chunk.data
        assert bytes(rebuilt) == blob


class TestUtils:
    """Bit helpers underpinning everything else."""

    def test_sign_extension(self):
        from repro.utils import s32, sign_extend

        assert sign_extend(0xFFF, 12) == -1
        assert sign_extend(0x7FF, 12) == 0x7FF
        assert s32(0xFFFF_FFFF) == -1
        assert s32(0x7FFF_FFFF) == 0x7FFF_FFFF

    def test_field_helpers(self):
        from repro.utils import bit, bits, set_field

        assert bits(0xABCD, 15, 12) == 0xA
        assert bit(0b100, 2) == 1
        assert set_field(0, 7, 4, 0xF) == 0xF0
        assert set_field(0xFF, 7, 4, 0) == 0x0F

    def test_alignment_helpers(self):
        from repro.utils import align_down, is_aligned

        assert align_down(0x1237, 16) == 0x1230
        assert is_aligned(0x1000, 8)
        assert not is_aligned(0x1001, 2)

    def test_popcount_and_rotate(self):
        from repro.utils import popcount32, rotate_left32

        assert popcount32(0xFF00FF00) == 16
        assert rotate_left32(0x8000_0001, 1) == 3
        assert rotate_left32(0x1234_5678, 32) == 0x1234_5678

    def test_log2_exact(self):
        from repro.utils import log2_exact

        assert log2_exact(4096) == 12
        with pytest.raises(ValueError):
            log2_exact(3000)
        with pytest.raises(ValueError):
            log2_exact(0)


class TestRad:
    def test_programming_time_and_history(self):
        from repro.fpx.rad import SELECTMAP_BYTES_PER_SECOND, Rad

        rad = Rad()
        seconds = rad.program(object(), "a.bit", bitfile_bytes=1_000_000)
        assert seconds == pytest.approx(1_000_000 /
                                        SELECTMAP_BYTES_PER_SECOND)
        rad.program(object(), "b.bit")
        assert rad.reprogram_count == 2
        assert rad.bitfile_name == "b.bit"
        assert rad.total_programming_seconds > seconds
