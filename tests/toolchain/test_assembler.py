"""Assembler tests: syntax, directives, synthetics, errors, fix-ups."""

import pytest

from repro.cpu.decode import decode
from repro.cpu.isa import Cond, Op3, Op3Mem
from repro.toolchain.asm import AssemblyError, assemble
from repro.toolchain.asm.parser import (
    parse_address,
    parse_expr,
    parse_operand,
    parse_register,
    split_operands,
)
from repro.toolchain.linker import MemoryMapScript, link


def words_of(source: str, section: str = ".text") -> list[int]:
    obj = assemble(source)
    data = obj.sections[section].data
    return [int.from_bytes(data[i:i + 4], "big")
            for i in range(0, len(data), 4)]


def one(source: str) -> int:
    words = words_of(source)
    assert len(words) == 1, f"expected one instruction, got {len(words)}"
    return words[0]


class TestRegisterParsing:
    @pytest.mark.parametrize("name,number", [
        ("%g0", 0), ("%g7", 7), ("%o0", 8), ("%o7", 15),
        ("%l0", 16), ("%l7", 23), ("%i0", 24), ("%i7", 31),
        ("%sp", 14), ("%fp", 30), ("%r17", 17), ("%R5", 5),
    ])
    def test_names(self, name, number):
        assert parse_register(name) == number

    @pytest.mark.parametrize("bad", ["%g8", "%o9", "%r32", "%x1", "g0"])
    def test_bad_names(self, bad):
        with pytest.raises(ValueError):
            parse_register(bad)


class TestExpressions:
    @pytest.mark.parametrize("text,value", [
        ("42", 42), ("0x1F", 31), ("0b101", 5), ("'A'", 65), ("'\\n'", 10),
        ("1 + 2 * 3", 7), ("(1 + 2) * 3", 9), ("-5", -5), ("~0", -1),
        ("1 << 10", 1024), ("0xFF & 0x0F", 0x0F), ("10 - 3 - 2", 5),
    ])
    def test_constants(self, text, value):
        expr = parse_expr(text)
        assert expr.constant() == value

    def test_symbol_plus_constant(self):
        expr = parse_expr("label + 8")
        assert expr.symbol == "label"
        assert expr.addend == 8

    def test_two_symbols_rejected(self):
        with pytest.raises(ValueError):
            parse_expr("a + b")

    def test_symbol_in_multiplication_rejected(self):
        with pytest.raises(ValueError):
            parse_expr("label * 2")


class TestOperandSplitting:
    def test_commas_inside_brackets_preserved(self):
        assert split_operands("%o0, [%o1 + %o2], %o3") == \
            ["%o0", "[%o1 + %o2]", "%o3"]

    def test_strings_with_commas(self):
        assert split_operands('"a,b", 2') == ['"a,b"', "2"]

    def test_address_forms(self):
        mem = parse_address("%o1 + 8")
        assert (mem.rs1, mem.rs2, mem.expr.addend) == (9, None, 8)
        mem = parse_address("[%o1 - 4]")
        assert mem.expr.addend == -4
        mem = parse_address("%o1 + %o2")
        assert (mem.rs1, mem.rs2) == (9, 10)


class TestEncodings:
    def test_add_reg(self):
        inst = decode(one("add %o0, %o1, %o2"))
        assert inst.op3 == Op3.ADD
        assert (inst.rs1, inst.rs2, inst.rd) == (8, 9, 10)

    def test_add_imm_negative(self):
        inst = decode(one("add %o0, -1, %o0"))
        assert inst.imm and inst.simm13 == -1

    def test_immediate_out_of_range(self):
        with pytest.raises(AssemblyError):
            assemble("add %o0, 5000, %o0")

    def test_load_store_forms(self):
        assert decode(one("ld [%o0], %o1")).op3 == Op3Mem.LD
        assert decode(one("st %o1, [%o0 + 4]")).simm13 == 4
        assert decode(one("ldub [%o0 + %o1], %o2")).op3 == Op3Mem.LDUB
        assert decode(one("std %o2, [%o0]")).op3 == Op3Mem.STD

    def test_alternate_space_load(self):
        inst = decode(one("lda [%o0] 0xb, %o1"))
        assert inst.op3 == Op3Mem.LDA
        assert inst.asi == 0x0B

    def test_sethi_hi(self):
        image = link([assemble("""
    .global _start
_start:
    sethi %hi(0x40001234), %o0
    or %o0, %lo(0x40001234), %o0
""")], MemoryMapScript.default(0x100))
        words = list(image.segments.values())[0]
        first = int.from_bytes(words[:4], "big")
        second = int.from_bytes(words[4:8], "big")
        assert decode(first).imm22 == 0x40001234 >> 10
        assert decode(second).simm13 == 0x40001234 & 0x3FF

    def test_branch_annul_bit(self):
        assert decode(one("bne,a somewhere\nsomewhere:")).annul
        assert not decode(one("bne somewhere\nsomewhere:")).annul

    def test_branch_displacement_backward(self):
        words = words_of("""
target:
    nop
    ba target
""")
        inst = decode(words[1])
        assert inst.disp22 == -1  # one word back

    def test_trap_instruction(self):
        inst = decode(one("ta 0x10"))
        assert inst.op3 == Op3.TICC
        assert inst.cond == Cond.A
        assert inst.simm13 == 0x10

    def test_custom_instruction(self):
        inst = decode(one("custom 5, %o0, %o1, %o2"))
        assert inst.op3 == Op3.CPOP1
        assert inst.opf == 5

    def test_state_register_access(self):
        assert decode(one("rd %psr, %o0")).op3 == Op3.RDPSR
        assert decode(one("wr %g0, 0xe0, %psr")).op3 == Op3.WRPSR
        assert decode(one("rd %asr17, %o0")).rs1 == 17

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError) as err:
            assemble("frobnicate %o0")
        assert "frobnicate" in str(err.value)

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError) as err:
            assemble("nop\nnop\nbadop %o0\n")
        assert err.value.line == 3


class TestSynthetics:
    def test_nop(self):
        assert one("nop") == 0x01000000

    def test_mov_forms(self):
        assert decode(one("mov 5, %o0")).op3 == Op3.OR
        assert decode(one("mov %o1, %o0")).rs2 == 9
        assert decode(one("mov %y, %o0")).op3 == Op3.RDASR
        assert decode(one("mov %o0, %y")).op3 == Op3.WRASR

    def test_cmp_tst(self):
        inst = decode(one("cmp %o0, 3"))
        assert inst.op3 == Op3.SUBCC and inst.rd == 0
        inst = decode(one("tst %o1"))
        assert inst.op3 == Op3.ORCC and inst.rd == 0

    def test_set_small_constant_one_instruction(self):
        assert len(words_of("set 100, %o0")) == 1
        assert len(words_of("set -50, %o0")) == 1

    def test_set_large_constant_two_instructions(self):
        words = words_of("set 0x12345678, %o0")
        assert len(words) == 2

    def test_set_aligned_constant_sethi_only(self):
        words = words_of("set 0x40000000, %o0")
        assert len(words) == 1
        assert decode(words[0]).op2 == 4  # SETHI

    def test_ret_retl(self):
        inst = decode(one("ret"))
        assert (inst.rs1, inst.simm13) == (31, 8)
        inst = decode(one("retl"))
        assert (inst.rs1, inst.simm13) == (15, 8)

    def test_clr_register_and_memory(self):
        assert decode(one("clr %o0")).op3 == Op3.OR
        assert decode(one("clr [%o1]")).op3 == Op3Mem.ST

    def test_inc_dec(self):
        inst = decode(one("inc %o0"))
        assert inst.op3 == Op3.ADD and inst.simm13 == 1
        inst = decode(one("dec 4, %o1"))
        assert inst.op3 == Op3.SUB and inst.simm13 == 4

    def test_neg_not(self):
        inst = decode(one("neg %o0"))
        assert inst.op3 == Op3.SUB and inst.rs1 == 0
        inst = decode(one("not %o1, %o2"))
        assert inst.op3 == Op3.XNOR

    def test_bset_bclr_btst(self):
        assert decode(one("bset 4, %o0")).op3 == Op3.OR
        assert decode(one("bclr 4, %o0")).op3 == Op3.ANDN
        assert decode(one("btst 4, %o0")).op3 == Op3.ANDCC

    def test_save_restore_bare(self):
        assert decode(one("save")).op3 == Op3.SAVE
        assert decode(one("restore")).op3 == Op3.RESTORE


class TestDirectives:
    def test_word_data(self):
        obj = assemble("""
    .data
values: .word 1, 2, 0x30
""")
        assert obj.sections[".data"].data == \
            b"\x00\x00\x00\x01\x00\x00\x00\x02\x00\x00\x000"

    def test_byte_and_half(self):
        obj = assemble("""
    .data
    .byte 1, 2
    .half 0x0304
""")
        assert obj.sections[".data"].data == b"\x01\x02\x03\x04"

    def test_ascii_and_asciz(self):
        obj = assemble("""
    .data
    .ascii "ab"
    .asciz "cd"
""")
        assert obj.sections[".data"].data == b"abcd\x00"

    def test_string_escapes(self):
        obj = assemble('    .data\n    .asciz "a\\n\\t\\"b"')
        assert obj.sections[".data"].data == b'a\n\t"b\x00'

    def test_align_pads_with_zeros(self):
        obj = assemble("""
    .data
    .byte 1
    .align 4
    .word 2
""")
        assert obj.sections[".data"].data == \
            b"\x01\x00\x00\x00\x00\x00\x00\x02"

    def test_skip(self):
        obj = assemble("    .data\n    .skip 5, 0xAA")
        assert obj.sections[".data"].data == b"\xaa" * 5

    def test_set_defines_absolute(self):
        word = one("""
    .set BUFSIZE, 0x100
    mov BUFSIZE, %o0
""")
        assert decode(word).simm13 == 0x100

    def test_global_marks_symbol(self):
        obj = assemble("""
    .global entry
entry:
    nop
""")
        assert obj.symbols["entry"].is_global

    def test_global_forward_reference(self):
        obj = assemble("""
    .global entry
    nop
entry:
    nop
""")
        assert obj.symbols["entry"].is_global

    def test_duplicate_label_rejected(self):
        with pytest.raises(Exception):
            assemble("x:\n    nop\nx:\n    nop")

    def test_unknown_directive(self):
        with pytest.raises(AssemblyError):
            assemble("    .frobnicate 1")

    def test_comments_stripped(self):
        words = words_of("""
    nop            ! line comment
    # full-line comment
    nop
""")
        assert len(words) == 2
