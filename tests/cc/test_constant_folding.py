"""Regression tests for compile-time constant folding corner cases.

The workload kernels (repro.workloads) flushed these out: the folder
used Python's floor division/modulo for global initializers (C requires
truncation toward zero), evaluated *every* operator eagerly — so any
folded expression with a negative right operand crashed on the shift
entries — and ignored the unsignedness of literals like ``0xFFFFFFFF``,
folding their division/shift/comparison with signed semantics.
"""

import pytest

from repro.core.sim import simulate
from repro.toolchain.cc import compile_c
from repro.toolchain.cc.cast import CompileError
from repro.toolchain.driver import compile_c_program
from repro.utils import s32


def run(source: str) -> int:
    report = simulate(compile_c_program(source), max_instructions=300_000)
    return s32(report.result_word)


class TestSignedTruncation:
    """C99 6.5.5: / truncates toward zero; % follows the dividend."""

    def test_global_init_negative_division_truncates(self):
        assert run("int g = -7 / 2;\nint main(void) { return g; }") == -3

    def test_global_init_negative_modulo_follows_dividend(self):
        assert run("int g = -7 % 2;\nint main(void) { return g; }") == -1

    def test_both_operands_negative(self):
        assert run("int g = (-9) / (-2);\nint main(void) { return g; }") == 4

    def test_negative_divisor_modulo(self):
        assert run("int g = 7 % -2;\nint main(void) { return g; }") == 1

    def test_folded_matches_runtime(self):
        # The same expression folded at compile time and computed in
        # registers must agree — the invariant the fold bug broke.
        assert run("""
int folded = -13 / 4;
int main(void) {
    int a = -13, b = 4;
    return (folded == a / b) + (-13 % 4 == a % b);
}""") == 2


class TestNegativeOperandsDontCrash:
    """The old folder built its op table eagerly, so a negative right
    operand raised ValueError from the shift entries even when the
    expression was a division."""

    def test_division_by_negative_compiles(self):
        compile_c("int g = 9 / -3;\nint main(void) { return g; }")

    def test_initializer_list_with_negative_operands(self):
        assert run("""
int t[4] = {-7 / 2, 7 % -2, 9 / -3, -8 >> 1};
int main(void) { return t[0] * 1000 + t[1] * 100 + t[2] * 10 + t[3]; }
""") == -3 * 1000 + 1 * 100 + -3 * 10 + -4


class TestUnsignedLiterals:
    """Hex literals that don't fit a signed int are unsigned, and the
    usual arithmetic conversions make the whole operation unsigned."""

    def test_unsigned_division_of_max(self):
        assert run("unsigned g = 0xFFFFFFFF / 16;\n"
                   "int main(void) { return (int)(g >> 24); }") == 0x0F

    def test_unsigned_right_shift_is_logical(self):
        assert run("unsigned g = 0xFFFFFFFF >> 4;\n"
                   "int main(void) { return (int)(g >> 24); }") == 0x0F

    def test_unsigned_comparison_of_big_literal(self):
        assert run("int g = 0xFFFFFFFF > 1;\n"
                   "int main(void) { return g; }") == 1

    def test_signed_shift_still_arithmetic(self):
        assert run("int g = -8 >> 1;\nint main(void) { return g; }") == -4


class TestWrapAround:
    def test_multiplication_wraps_to_32_bits(self):
        assert run("int g = 100000 * 100000;\n"
                   "int main(void) { return g; }") == 1410065408

    def test_shift_into_sign_bit(self):
        assert run("unsigned x = 1 << 31;\n"
                   "int main(void) { return (int)(x >> 31); }") == 1

    def test_division_by_zero_folds_to_zero(self):
        # Not UB-crash territory: the folder's documented behaviour.
        assert run("int g = 5 / 0;\nint main(void) { return g; }") == 0

    def test_array_size_folding_unchanged(self):
        assert run("int a[6 * 2 - 2];\n"
                   "int main(void) { return sizeof(a); }") == 40


class TestStillRejectsNonConstants:
    def test_non_constant_initializer_is_an_error(self):
        with pytest.raises(CompileError):
            compile_c("int f(void) { return 1; }\nint g = f();\n"
                      "int main(void) { return g; }")
