"""Fixtures for compiler tests: one shared platform, many programs."""

import pytest

from repro.control import DirectTransport, LiquidClient
from repro.fpx import FPXPlatform
from repro.mem.memmap import DEFAULT_MAP
from repro.net.protocol import LeonState
from repro.toolchain.driver import compile_c_program
from repro.utils import s32


@pytest.fixture(scope="module")
def c_run():
    """Compile a C program, run it remotely, return main()'s value
    (signed).  One platform is shared per test module — reloading a new
    program over the control protocol is exactly what the paper's flow
    does between experiments."""
    platform = FPXPlatform()
    platform.boot()
    client = LiquidClient(DirectTransport(platform,
                                          platform.config.device_ip,
                                          platform.config.control_port))

    def run(source: str, max_instructions: int = 5_000_000) -> int:
        image = compile_c_program(source)
        result = client.run_image(image,
                                  result_addr=DEFAULT_MAP.result_addr,
                                  max_instructions=max_instructions)
        assert platform.leon_ctrl.state == LeonState.DONE, \
            f"program ended in state {platform.leon_ctrl.state!r}"
        return s32(result.result_word)

    return run
