"""Runtime-library (mini libc) tests: every routine, executed on LEON."""

import pytest

from repro.core.sim import Simulator, simulate
from repro.toolchain.driver import compile_c_program
from repro.utils import s32


def run_libc(source: str, max_instructions: int = 5_000_000):
    image = compile_c_program(source, with_libc=True)
    return simulate(image, max_instructions=max_instructions)


class TestMemoryRoutines:
    def test_memcpy_word_aligned_fast_path(self):
        report = run_libc("""
unsigned src[8] = {1, 2, 3, 4, 5, 6, 7, 8};
unsigned dst[8];
int main(void) {
    memcpy(dst, src, 32);
    int total = 0;
    for (int i = 0; i < 8; i++) total += (int)dst[i];
    return total;
}""")
        assert report.result_word == 36

    def test_memcpy_unaligned_byte_path(self):
        report = run_libc("""
char src[10] = "abcdefghi";
char dst[10];
int main(void) {
    memcpy(dst + 1, src + 2, 5);   /* misaligned both sides */
    return dst[1] == 'c' && dst[5] == 'g';
}""")
        assert report.result_word == 1

    def test_memset(self):
        report = run_libc("""
char buf[16];
int main(void) {
    memset(buf, 0x5A, 16);
    int ok = 1;
    for (int i = 0; i < 16; i++)
        if (buf[i] != 0x5A) ok = 0;
    return ok;
}""")
        assert report.result_word == 1

    def test_memcmp(self):
        report = run_libc("""
char a[4] = {1, 2, 3, 4};
char b[4] = {1, 2, 9, 4};
int main(void) {
    int eq = memcmp(a, a, 4);
    int lt = memcmp(a, b, 4);
    int gt = memcmp(b, a, 4);
    return eq == 0 && lt < 0 && gt > 0;
}""")
        assert report.result_word == 1


class TestStringRoutines:
    def test_strlen(self):
        report = run_libc("""
int main(void) { return strlen("hello") + strlen(""); }""")
        assert report.result_word == 5

    def test_strcmp_ordering(self):
        report = run_libc("""
int main(void) {
    return strcmp("abc", "abc") == 0
        && strcmp("abc", "abd") < 0
        && strcmp("b", "ab") > 0
        && strcmp("ab", "abc") < 0;
}""")
        assert report.result_word == 1

    def test_strcpy_returns_dest(self):
        report = run_libc("""
char buf[8];
int main(void) {
    char *r = strcpy(buf, "xyz");
    return r == buf && buf[3] == 0 && strlen(buf) == 3;
}""")
        assert report.result_word == 1

    def test_abs(self):
        report = run_libc("int main(void) { return abs(-42) + abs(17); }")
        assert report.result_word == 59


class TestConsole:
    def test_puts_and_numbers_over_uart(self):
        report = run_libc("""
int main(void) {
    puts_uart("cycles:");
    print_unsigned(12345);
    putchar_uart('\\n');
    print_hex(0xDEADBEEF);
    return 0;
}""")
        assert report.uart_output == b"cycles:\n12345\n0xdeadbeef"

    def test_print_unsigned_zero_and_max(self):
        report = run_libc("""
int main(void) {
    print_unsigned(0);
    putchar_uart(' ');
    print_unsigned(0xFFFFFFFFu);
    return 0;
}""")
        assert report.uart_output == b"0 4294967295"

    def test_uart_on_full_platform(self):
        """Console output also works through the networked platform."""
        from repro.core import LiquidProcessorSystem

        system = LiquidProcessorSystem()
        image = compile_c_program("""
int main(void) { puts_uart("fpx"); return 1; }""", with_libc=True)
        run = system.run_image(image)
        assert run.result == 1
        assert system.platform.uart.transmitted() == b"fpx\n"


class TestLinkingBehaviour:
    def test_user_symbols_shadowing_is_rejected(self):
        """Defining a function the library also defines is a link error,
        like any duplicate global."""
        from repro.toolchain.objfile import LinkError

        with pytest.raises(LinkError):
            compile_c_program("""
unsigned strlen(char *s) { return 0; }
int main(void) { return 0; }""", with_libc=True)

    def test_local_labels_do_not_collide_across_units(self):
        # Both the user unit and libc generate .Lret/.Lstr labels.
        report = run_libc("""
int helper(int x) { return x ? x : -1; }
int main(void) {
    char *s = "a";
    return helper(strlen(s));
}""")
        assert report.result_word == 1

    def test_libc_not_linked_by_default(self):
        from repro.toolchain.cc.cast import CompileError

        with pytest.raises(CompileError):
            compile_c_program("int main(void) { return strlen(\"x\"); }")
