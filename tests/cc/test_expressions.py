"""Mini-C expression semantics, executed on the simulated LEON."""

import pytest


class TestArithmetic:
    def test_literals_and_return(self, c_run):
        assert c_run("int main(void) { return 42; }") == 42

    def test_negative_return(self, c_run):
        assert c_run("int main(void) { return -7; }") == -7

    def test_hex_char_literals(self, c_run):
        assert c_run("int main(void) { return 0x2A; }") == 42
        assert c_run("int main(void) { return 'A'; }") == 65
        assert c_run(r"int main(void) { return '\n'; }") == 10

    def test_basic_operators(self, c_run):
        assert c_run("int main(void) { return 6 * 7; }") == 42
        assert c_run("int main(void) { return 100 - 58; }") == 42
        assert c_run("int main(void) { return 84 / 2; }") == 42
        assert c_run("int main(void) { return 142 % 100; }") == 42

    def test_precedence(self, c_run):
        assert c_run("int main(void) { return 2 + 3 * 4; }") == 14
        assert c_run("int main(void) { return (2 + 3) * 4; }") == 20
        assert c_run("int main(void) { return 20 - 4 - 6; }") == 10

    def test_signed_division_truncates(self, c_run):
        assert c_run("int main(void) { int a = -7; return a / 2; }") == -3
        assert c_run("int main(void) { int a = -7; return a % 2; }") == -1

    def test_unsigned_division(self, c_run):
        assert c_run("""
unsigned main(void) {
    unsigned a = 0xFFFFFFF0u;
    return a / 16 == 0x0FFFFFFF;
}""") == 1

    def test_strength_reduced_operations(self, c_run):
        assert c_run("""
int main(void) {
    unsigned i = 100;
    return i * 8 + i / 4 + i % 32;
}""") == 800 + 25 + 4

    def test_bitwise(self, c_run):
        assert c_run("int main(void) { return 0xF0 | 0x0F; }") == 0xFF
        assert c_run("int main(void) { return 0xFF & 0x18; }") == 0x18
        assert c_run("int main(void) { return 0xFF ^ 0x0F; }") == 0xF0
        assert c_run("int main(void) { return ~0; }") == -1

    def test_shifts(self, c_run):
        assert c_run("int main(void) { return 1 << 10; }") == 1024
        assert c_run("int main(void) { return 1024 >> 3; }") == 128
        assert c_run("int main(void) { int a = -8; return a >> 1; }") == -4
        assert c_run("""
int main(void) {
    unsigned a = 0x80000000u;
    return (a >> 31) == 1;
}""") == 1

    def test_unary(self, c_run):
        assert c_run("int main(void) { int a = 5; return -a; }") == -5
        assert c_run("int main(void) { return !0 + !5; }") == 1

    def test_comma_operator(self, c_run):
        assert c_run("int main(void) { int a; return (a = 3, a + 1); }") == 4


class TestComparisonsAndLogic:
    @pytest.mark.parametrize("expr,value", [
        ("1 < 2", 1), ("2 < 1", 0), ("2 <= 2", 1), ("3 <= 2", 0),
        ("2 > 1", 1), ("1 > 2", 0), ("2 >= 2", 1), ("1 >= 2", 0),
        ("1 == 1", 1), ("1 == 2", 0), ("1 != 2", 1), ("2 != 2", 0),
    ])
    def test_relational(self, c_run, expr, value):
        assert c_run(f"int main(void) {{ return {expr}; }}") == value

    def test_signed_comparison_with_negatives(self, c_run):
        assert c_run("int main(void) { int a = -1; return a < 1; }") == 1

    def test_unsigned_comparison_wraps(self, c_run):
        assert c_run("""
int main(void) {
    unsigned a = 0xFFFFFFFFu;
    return a > 1u;
}""") == 1

    def test_logical_and_or(self, c_run):
        assert c_run("int main(void) { return 1 && 2; }") == 1
        assert c_run("int main(void) { return 1 && 0; }") == 0
        assert c_run("int main(void) { return 0 || 3; }") == 1
        assert c_run("int main(void) { return 0 || 0; }") == 0

    def test_short_circuit_skips_side_effects(self, c_run):
        assert c_run("""
int g = 0;
int bump(void) { g = g + 1; return 1; }
int main(void) {
    0 && bump();
    1 || bump();
    return g;
}""") == 0

    def test_short_circuit_evaluates_when_needed(self, c_run):
        assert c_run("""
int g = 0;
int bump(void) { g = g + 1; return 1; }
int main(void) {
    1 && bump();
    0 || bump();
    return g;
}""") == 2

    def test_ternary(self, c_run):
        assert c_run("int main(void) { return 1 ? 10 : 20; }") == 10
        assert c_run("int main(void) { return 0 ? 10 : 20; }") == 20
        assert c_run("""
int main(void) {
    int x = 7;
    return x > 5 ? x * 2 : x - 1;
}""") == 14


class TestAssignment:
    def test_simple_and_chained(self, c_run):
        assert c_run("""
int main(void) {
    int a, b;
    a = b = 21;
    return a + b;
}""") == 42

    def test_assignment_is_an_expression(self, c_run):
        assert c_run("int main(void) { int a; return (a = 9) + 1; }") == 10

    @pytest.mark.parametrize("op,start,operand,expect", [
        ("+=", 40, 2, 42), ("-=", 50, 8, 42), ("*=", 6, 7, 42),
        ("/=", 84, 2, 42), ("%=", 142, 100, 42),
        ("&=", 0xFF, 0x2A, 42), ("|=", 0x28, 0x02, 42),
        ("^=", 0x6A, 0x40, 42), ("<<=", 21, 1, 42), (">>=", 84, 1, 42),
    ])
    def test_compound_assignment(self, c_run, op, start, operand, expect):
        assert c_run(f"""
int main(void) {{
    int a = {start};
    a {op} {operand};
    return a;
}}""") == expect

    def test_increment_decrement(self, c_run):
        assert c_run("""
int main(void) {
    int a = 5;
    int pre = ++a;     /* a=6, pre=6 */
    int post = a++;    /* a=7, post=6 */
    int predec = --a;  /* a=6 */
    int postdec = a--; /* a=5, postdec=6 */
    return a * 1000 + pre * 100 + post * 10 + (predec + postdec - 12);
}""") == 5660

    def test_incdec_through_pointer(self, c_run):
        assert c_run("""
int main(void) {
    int x = 10;
    int *p = &x;
    (*p)++;
    ++*p;
    return x;
}""") == 12


class TestTypesAndCasts:
    def test_char_is_signed_byte(self, c_run):
        assert c_run("""
int main(void) {
    char c = 200;   /* wraps to -56 */
    return c;
}""") == -56

    def test_unsigned_char(self, c_run):
        assert c_run("""
int main(void) {
    unsigned char c = 200;
    return c;
}""") == 200

    def test_cast_truncates(self, c_run):
        assert c_run("int main(void) { return (char)0x1FF; }") == -1
        assert c_run("int main(void) { return (unsigned char)0x1FF; }") == 255

    def test_sizeof(self, c_run):
        assert c_run("int main(void) { return sizeof(int); }") == 4
        assert c_run("int main(void) { return sizeof(char); }") == 1
        assert c_run("int main(void) { return sizeof(int*); }") == 4
        assert c_run("""
int main(void) {
    int arr[10];
    return sizeof arr;
}""") == 40

    def test_unsigned_wraparound(self, c_run):
        assert c_run("""
int main(void) {
    unsigned a = 0;
    a = a - 1;
    return a == 0xFFFFFFFFu;
}""") == 1
