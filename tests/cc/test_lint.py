"""Source-level mini-C lint: definite assignment + unreachable code,
sharing the diagnostic currency of the binary verifier."""

from __future__ import annotations

import pytest

from repro.toolchain.cc.lint import lint_source
from repro.workloads import all_workloads


def codes(source: str) -> list[str]:
    return [d.code for d in lint_source(source)]


def test_use_before_init_simple():
    report = lint_source("""
int f(void) {
    int x;
    return x + 1;
}
""", subject="crafted")
    [diag] = report.diagnostics
    assert diag.code == "use-before-init"
    assert "'x'" in diag.message
    assert diag.symbol == "f"
    assert not diag.is_error  # lint findings are warnings


def test_initialized_and_params_are_clean():
    assert codes("""
int f(int a) {
    int x = 2;
    return a + x;
}
""") == []


def test_branch_merge_requires_both_arms():
    assert "use-before-init" in codes("""
int f(int a) {
    int x;
    if (a) { x = 1; }
    return x;
}
""")
    assert codes("""
int f(int a) {
    int x;
    if (a) { x = 1; } else { x = 2; }
    return x;
}
""") == []


def test_early_return_arm_counts_as_initializing():
    # The then-arm exits, so only the else path continues — and it
    # initializes x.
    assert codes("""
int f(int a) {
    int x;
    if (a) { return 0; } else { x = 2; }
    return x;
}
""") == []


def test_while_body_may_not_run():
    assert "use-before-init" in codes("""
int f(int a) {
    int x;
    while (a) { x = 1; a = a - 1; }
    return x;
}
""")


def test_do_while_body_is_definite():
    assert codes("""
int f(int a) {
    int x;
    do { x = a; a = a - 1; } while (a);
    return x;
}
""") == []


def test_compound_assignment_reads_target():
    assert "use-before-init" in codes("""
int f(void) {
    int x;
    x += 1;
    return x;
}
""")


def test_address_of_stops_tracking():
    assert codes("""
void fill(int *p);
int f(void) {
    int x;
    fill(&x);
    return x;
}
""") == []


def test_arrays_are_not_tracked():
    # Element-wise initialization is the kernels' idiom; per-element
    # tracking is out of scope so arrays must stay silent.
    assert codes("""
int f(void) {
    int buf[4];
    int i;
    for (i = 0; i < 4; i++) { buf[i] = i; }
    return buf[2];
}
""") == []


def test_unreachable_after_return():
    report = lint_source("""
int f(int a) {
    return a;
    a = a + 1;
    return a;
}
""", subject="crafted")
    unreachable = [d for d in report.diagnostics
                   if d.code == "unreachable-stmt"]
    assert len(unreachable) == 1  # one finding per block
    assert "return" in unreachable[0].message


def test_unreachable_after_break():
    assert "unreachable-stmt" in codes("""
int f(int a) {
    while (a) {
        break;
        a = a - 1;
    }
    return a;
}
""")


def test_if_with_both_arms_returning_terminates():
    assert "unreachable-stmt" in codes("""
int f(int a) {
    if (a) { return 1; } else { return 2; }
    return 3;
}
""")


def test_parse_failure_is_a_diagnostic_not_an_exception():
    report = lint_source("int f( {", subject="broken")
    [diag] = report.diagnostics
    assert diag.code == "parse-error"
    assert diag.is_error


@pytest.mark.parametrize("workload", all_workloads(),
                         ids=lambda wl: wl.name)
def test_registry_kernel_sources_lint_clean(workload):
    report = lint_source(workload.c_source(0), subject=workload.name)
    assert not report.diagnostics, report.render_text()
