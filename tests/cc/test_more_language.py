"""Additional mini-C language coverage: storage classes, multi-TU
programs, type spellings, and heavier algorithmic workloads."""

import pytest

from repro.core.sim import simulate
from repro.toolchain.cc.cast import CompileError
from repro.toolchain.driver import SourceFile, build_image, compile_c_program
from repro.utils import s32


def run(source: str, **kwargs) -> int:
    report = simulate(compile_c_program(source, **kwargs))
    return s32(report.result_word)


class TestTypeSpellings:
    def test_short_long_map_to_int(self, c_run):
        assert c_run("""
long big = 100000;
short small = 12;
int main(void) { return (int)(big / 1000) + small; }""") == 112

    def test_unsigned_int_spelling(self, c_run):
        assert c_run("""
unsigned int x = 40;
int main(void) { return (int)x + 2; }""") == 42

    def test_signed_is_accepted(self, c_run):
        assert c_run("signed int main(void) { signed char c = -3; "
                     "return c; }") == -3

    def test_static_and_const_accepted(self, c_run):
        assert c_run("""
static int hidden = 7;
const int limit = 6;
int main(void) { return hidden * limit; }""") == 42

    def test_void_pointer_roundtrip(self, c_run):
        assert c_run("""
int main(void) {
    int x = 99;
    void *p = (void*)&x;
    int *q = (int*)p;
    return *q;
}""") == 99


class TestMultiTranslationUnit:
    def test_extern_global_shared_across_units(self):
        image = build_image([
            SourceFile("""
extern int shared;
int main(void) { shared = shared + 2; return shared; }""", "c", "a.c"),
            SourceFile("int shared = 40;", "c", "b.c"),
        ])
        assert s32(simulate(image).result_word) == 42

    def test_cross_unit_function_calls(self):
        image = build_image([
            SourceFile("""
int twice(int x);
int thrice(int x);
int main(void) { return twice(thrice(7)); }""", "c", "main.c"),
            SourceFile("int twice(int x) { return 2 * x; }", "c", "m2.c"),
            SourceFile("int thrice(int x) { return 3 * x; }", "c", "m3.c"),
        ])
        assert s32(simulate(image).result_word) == 42

    def test_string_literals_in_multiple_units(self):
        image = build_image([
            SourceFile("""
unsigned strlen(char *s);
char *first(void);
int main(void) { return strlen(first()) + strlen("xy"); }""", "c", "a.c"),
            SourceFile("""
unsigned strlen(char *s) {
    unsigned n = 0;
    while (s[n]) n++;
    return n;
}
char *first(void) { return "abcde"; }""", "c", "b.c"),
        ])
        assert s32(simulate(image).result_word) == 7


class TestExpressionsEdgeCases:
    def test_nested_ternary(self, c_run):
        assert c_run("""
int classify(int x) {
    return x < 0 ? -1 : x == 0 ? 0 : 1;
}
int main(void) {
    return classify(-4) * 100 + classify(0) * 10 + classify(9);
}""") == -99

    def test_chained_comparisons_parse_left_assoc(self, c_run):
        # (1 < 2) < 3  ->  1 < 3  ->  1
        assert c_run("int main(void) { return 1 < 2 < 3; }") == 1

    def test_assignment_in_condition(self, c_run):
        assert c_run("""
int main(void) {
    int x = 0, n = 0;
    while ((x = x + 3) < 10) n++;
    return n * 100 + x;
}""") == 312

    def test_logical_results_are_exactly_0_or_1(self, c_run):
        assert c_run("""
int main(void) {
    int a = 17, b = -5;
    return (a && b) + (a || b) + !a + !!b;
}""") == 3

    def test_deeply_nested_calls_and_windows(self, c_run):
        assert c_run("""
int f0(int x) { return x + 1; }
int f1(int x) { return f0(x) + 1; }
int f2(int x) { return f1(x) + 1; }
int f3(int x) { return f2(x) + 1; }
int f4(int x) { return f3(x) + 1; }
int f5(int x) { return f4(x) + 1; }
int f6(int x) { return f5(x) + 1; }
int f7(int x) { return f6(x) + 1; }
int f8(int x) { return f7(x) + 1; }
int f9(int x) { return f8(x) + 1; }
int main(void) { return f9(32); }""") == 42

    def test_global_pointer_to_global_array(self, c_run):
        assert c_run("""
int table[4] = {1, 2, 3, 4};
int *cursor;
int main(void) {
    cursor = table;
    cursor = cursor + 2;
    return *cursor;
}""") == 3


class TestAlgorithms:
    def test_quicksort(self, c_run):
        assert c_run("""
int data[16] = {9, 3, 14, 1, 12, 6, 0, 15, 7, 11, 2, 13, 5, 10, 4, 8};

void quicksort(int lo, int hi) {
    if (lo >= hi) return;
    int pivot = data[(lo + hi) / 2];
    int i = lo, j = hi;
    while (i <= j) {
        while (data[i] < pivot) i++;
        while (data[j] > pivot) j--;
        if (i <= j) {
            int tmp = data[i]; data[i] = data[j]; data[j] = tmp;
            i++; j--;
        }
    }
    quicksort(lo, j);
    quicksort(i, hi);
}

int main(void) {
    quicksort(0, 15);
    for (int k = 0; k < 16; k++)
        if (data[k] != k) return -1;
    return 1;
}""", max_instructions=2_000_000) == 1

    def test_binary_search(self, c_run):
        assert c_run("""
int sorted_data[10] = {2, 5, 8, 12, 16, 23, 38, 56, 72, 91};
int bsearch_index(int key) {
    int lo = 0, hi = 9;
    while (lo <= hi) {
        int mid = (lo + hi) / 2;
        if (sorted_data[mid] == key) return mid;
        if (sorted_data[mid] < key) lo = mid + 1;
        else hi = mid - 1;
    }
    return -1;
}
int main(void) {
    return bsearch_index(23) * 100 + bsearch_index(91) * 10
         + (bsearch_index(40) == -1);
}""") == 591

    def test_collatz_longest_chain(self, c_run):
        assert c_run("""
int chain_length(int n) {
    int steps = 0;
    while (n != 1) {
        if (n & 1) n = 3 * n + 1;
        else n = n / 2;
        steps++;
    }
    return steps;
}
int main(void) {
    int best = 0, arg = 0;
    for (int i = 1; i <= 40; i++) {
        int length = chain_length(i);
        if (length > best) { best = length; arg = i; }
    }
    return arg * 1000 + best;
}""", ) == 27 * 1000 + 111

    def test_fixed_point_sqrt(self, c_run):
        assert c_run("""
unsigned isqrt(unsigned n) {
    unsigned root = 0;
    unsigned bit = 1u << 30;
    while (bit > n) bit = bit >> 2;
    while (bit) {
        if (n >= root + bit) {
            n = n - root - bit;
            root = (root >> 1) + bit;
        } else {
            root = root >> 1;
        }
        bit = bit >> 2;
    }
    return root;
}
int main(void) {
    return isqrt(1764) * 1000 + isqrt(99) + isqrt(0);
}""") == 42 * 1000 + 9
