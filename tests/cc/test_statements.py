"""Mini-C statement semantics: control flow, scoping, loops."""

import pytest


class TestIfElse:
    def test_if_taken(self, c_run):
        assert c_run("""
int main(void) {
    int r = 0;
    if (3 > 1) r = 5;
    return r;
}""") == 5

    def test_if_not_taken(self, c_run):
        assert c_run("""
int main(void) {
    int r = 0;
    if (1 > 3) r = 5;
    return r;
}""") == 0

    def test_if_else_chain(self, c_run):
        source = """
int classify(int x) {
    if (x < 0) return -1;
    else if (x == 0) return 0;
    else return 1;
}
int main(void) { return classify(%d); }
"""
        assert c_run(source % -5) == -1
        assert c_run(source % 0) == 0
        assert c_run(source % 9) == 1

    def test_dangling_else_binds_to_nearest_if(self, c_run):
        assert c_run("""
int main(void) {
    int r = 0;
    if (1)
        if (0) r = 1;
        else r = 2;
    return r;
}""") == 2

    def test_non_comparison_condition(self, c_run):
        assert c_run("""
int main(void) {
    int x = 7;
    if (x) return 1;
    return 0;
}""") == 1

    def test_compound_condition(self, c_run):
        assert c_run("""
int main(void) {
    int a = 3, b = 4;
    if (a > 2 && b > 3 && a + b == 7) return 1;
    return 0;
}""") == 1


class TestLoops:
    def test_while_sum(self, c_run):
        assert c_run("""
int main(void) {
    int i = 0, total = 0;
    while (i < 10) { total += i; i++; }
    return total;
}""") == 45

    def test_while_false_never_runs(self, c_run):
        assert c_run("""
int main(void) {
    int r = 1;
    while (0) r = 2;
    return r;
}""") == 1

    def test_do_while_runs_at_least_once(self, c_run):
        assert c_run("""
int main(void) {
    int r = 0;
    do { r = 7; } while (0);
    return r;
}""") == 7

    def test_for_classic(self, c_run):
        assert c_run("""
int main(void) {
    int total = 0;
    int i;
    for (i = 1; i <= 10; i++) total += i;
    return total;
}""") == 55

    def test_for_with_declaration(self, c_run):
        assert c_run("""
int main(void) {
    int total = 0;
    for (int i = 0; i < 5; i++) total += i * i;
    return total;
}""") == 30

    def test_for_empty_clauses(self, c_run):
        assert c_run("""
int main(void) {
    int i = 0;
    for (;;) {
        i++;
        if (i == 4) break;
    }
    return i;
}""") == 4

    def test_nested_loops(self, c_run):
        assert c_run("""
int main(void) {
    int total = 0;
    for (int i = 0; i < 4; i++)
        for (int j = 0; j < 4; j++)
            total += i * j;
    return total;
}""") == 36

    def test_break_leaves_inner_loop_only(self, c_run):
        assert c_run("""
int main(void) {
    int count = 0;
    for (int i = 0; i < 3; i++) {
        for (int j = 0; j < 10; j++) {
            if (j == 2) break;
            count++;
        }
    }
    return count;
}""") == 6

    def test_continue_skips_iteration(self, c_run):
        assert c_run("""
int main(void) {
    int total = 0;
    for (int i = 0; i < 10; i++) {
        if (i % 2) continue;
        total += i;
    }
    return total;
}""") == 20

    def test_continue_in_while_reaches_condition(self, c_run):
        assert c_run("""
int main(void) {
    int i = 0, total = 0;
    while (i < 5) {
        i++;
        if (i == 3) continue;
        total += i;
    }
    return total;
}""") == 12


class TestScoping:
    def test_block_shadows_outer(self, c_run):
        assert c_run("""
int main(void) {
    int x = 1;
    {
        int x = 2;
        x = x + 10;
    }
    return x;
}""") == 1

    def test_inner_block_sees_outer(self, c_run):
        assert c_run("""
int main(void) {
    int x = 5;
    { x = x + 1; }
    return x;
}""") == 6

    def test_global_shadowed_by_local(self, c_run):
        assert c_run("""
int x = 100;
int main(void) {
    int x = 1;
    return x;
}""") == 1

    def test_for_loop_variable_scoped(self, c_run):
        assert c_run("""
int main(void) {
    int i = 99;
    for (int i = 0; i < 3; i++) { }
    return i;
}""") == 99


class TestGlobals:
    def test_initialized_global(self, c_run):
        assert c_run("""
int counter = 17;
int main(void) { return counter; }""") == 17

    def test_uninitialized_global_is_zero(self, c_run):
        assert c_run("""
int blank;
int main(void) { return blank; }""") == 0

    def test_global_mutation_persists_across_calls(self, c_run):
        assert c_run("""
int counter = 0;
void bump(void) { counter += 3; }
int main(void) {
    bump();
    bump();
    return counter;
}""") == 6

    def test_global_array_with_initializer(self, c_run):
        assert c_run("""
int table[5] = {10, 20, 30};
int main(void) { return table[0] + table[2] + table[4]; }""") == 40

    def test_global_char_and_constant_folding(self, c_run):
        assert c_run("""
char small = 'x';
unsigned mask = 0xFF00 | 0x00FF;
int main(void) { return (mask == 0xFFFF) + small; }""") == 1 + ord("x")
