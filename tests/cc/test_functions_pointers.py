"""Functions, recursion, pointers, arrays, strings — on the simulated LEON."""

import pytest

from repro.toolchain.cc.cast import CompileError


class TestFunctions:
    def test_call_with_arguments(self, c_run):
        assert c_run("""
int add3(int a, int b, int c) { return a + b + c; }
int main(void) { return add3(10, 20, 12); }""") == 42

    def test_six_arguments(self, c_run):
        assert c_run("""
int sum6(int a, int b, int c, int d, int e, int f) {
    return a + b * 2 + c * 3 + d * 4 + e * 5 + f * 6;
}
int main(void) { return sum6(1, 2, 3, 4, 5, 6); }""") == 91

    def test_void_function(self, c_run):
        assert c_run("""
int g;
void set_g(int v) { g = v; }
int main(void) { set_g(31); return g; }""") == 31

    def test_forward_declaration(self, c_run):
        assert c_run("""
int later(int x);
int main(void) { return later(4); }
int later(int x) { return x * x; }""") == 16

    def test_nested_calls(self, c_run):
        assert c_run("""
int twice(int x) { return x * 2; }
int inc(int x) { return x + 1; }
int main(void) { return twice(inc(twice(5))); }""") == 22

    def test_call_in_expression_preserves_temporaries(self, c_run):
        """Window-local temporaries must survive the call."""
        assert c_run("""
int f(int x) { return x + 1; }
int main(void) {
    int a = 100;
    return a + f(1) * 10;
}""") == 120

    def test_recursion_factorial(self, c_run):
        assert c_run("""
int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
int main(void) { return fact(7); }""") == 5040

    def test_deep_recursion_spills_windows(self, c_run):
        """Depth 40 >> NWINDOWS=8 — exercises the boot ROM's window
        overflow/underflow handlers under compiled code."""
        assert c_run("""
int depth(int n) {
    if (n == 0) return 0;
    return 1 + depth(n - 1);
}
int main(void) { return depth(40); }""") == 40

    def test_mutual_recursion(self, c_run):
        assert c_run("""
int is_odd(int n);
int is_even(int n) { return n == 0 ? 1 : is_odd(n - 1); }
int is_odd(int n) { return n == 0 ? 0 : is_even(n - 1); }
int main(void) { return is_even(10) * 10 + is_odd(7); }""") == 11

    def test_fibonacci(self, c_run):
        assert c_run("""
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main(void) { return fib(12); }""") == 144

    def test_param_is_writable_copy(self, c_run):
        assert c_run("""
int mangle(int x) { x = x * 2; return x; }
int main(void) {
    int v = 5;
    mangle(v);
    return v;
}""") == 5

    def test_too_many_params_rejected(self, c_run):
        with pytest.raises(CompileError):
            c_run("""
int f(int a, int b, int c, int d, int e, int f, int g) { return 0; }
int main(void) { return 0; }""")

    def test_wrong_arity_rejected(self, c_run):
        with pytest.raises(CompileError):
            c_run("""
int f(int a) { return a; }
int main(void) { return f(1, 2); }""")

    def test_undeclared_function_rejected(self, c_run):
        with pytest.raises(CompileError):
            c_run("int main(void) { return missing(); }")


class TestPointers:
    def test_address_of_and_deref(self, c_run):
        assert c_run("""
int main(void) {
    int x = 8;
    int *p = &x;
    return *p + 1;
}""") == 9

    def test_write_through_pointer(self, c_run):
        assert c_run("""
int main(void) {
    int x = 1;
    int *p = &x;
    *p = 42;
    return x;
}""") == 42

    def test_pointer_to_param_output_argument(self, c_run):
        assert c_run("""
void divide(int num, int den, int *quot, int *rem) {
    *quot = num / den;
    *rem = num % den;
}
int main(void) {
    int q, r;
    divide(47, 5, &q, &r);
    return q * 10 + r;
}""") == 92

    def test_pointer_arithmetic_scales(self, c_run):
        assert c_run("""
int arr[4] = {10, 20, 30, 40};
int main(void) {
    int *p = arr;
    p = p + 2;
    return *p;
}""") == 30

    def test_pointer_increment(self, c_run):
        assert c_run("""
int arr[3] = {5, 6, 7};
int main(void) {
    int *p = arr;
    p++;
    return *p;
}""") == 6

    def test_pointer_difference(self, c_run):
        assert c_run("""
int arr[8];
int main(void) {
    int *a = &arr[1];
    int *b = &arr[6];
    return b - a;
}""") == 5

    def test_pointer_comparison(self, c_run):
        assert c_run("""
int arr[4];
int main(void) {
    return &arr[3] > &arr[0];
}""") == 1

    def test_pointer_to_pointer(self, c_run):
        assert c_run("""
int main(void) {
    int x = 13;
    int *p = &x;
    int **pp = &p;
    **pp = 26;
    return x;
}""") == 26

    def test_char_pointer_walks_bytes(self, c_run):
        assert c_run("""
int main(void) {
    int word = 0x01020304;
    char *p = (char*)&word;
    return p[0] * 1000 + p[3];   /* big-endian: 1, 4 */
}""") == 1004

    def test_volatile_pointer_mmio_reads_cycle_counter(self, c_run):
        """Reading the FPX cycle counter through a volatile pointer —
        real memory-mapped I/O through compiled code."""
        assert c_run("""
int main(void) {
    volatile unsigned *counter = (unsigned*)0x80000100;
    unsigned first = *counter;
    unsigned second = *counter;
    return second >= first;
}""") == 1


class TestArrays:
    def test_local_array_indexing(self, c_run):
        assert c_run("""
int main(void) {
    int arr[5];
    for (int i = 0; i < 5; i++) arr[i] = i * i;
    return arr[4] + arr[2];
}""") == 20

    def test_local_array_initializer(self, c_run):
        assert c_run("""
int main(void) {
    int arr[4] = {1, 2, 3, 4};
    return arr[0] + arr[3];
}""") == 5

    def test_char_array(self, c_run):
        assert c_run("""
int main(void) {
    char buf[8];
    buf[0] = 'h';
    buf[1] = 'i';
    return buf[0] + buf[1];
}""") == ord("h") + ord("i")

    def test_array_decays_to_pointer_argument(self, c_run):
        assert c_run("""
int sum(int *values, int count) {
    int total = 0;
    for (int i = 0; i < count; i++) total += values[i];
    return total;
}
int data[6] = {1, 2, 3, 4, 5, 6};
int main(void) { return sum(data, 6); }""") == 21

    def test_index_is_commutative(self, c_run):
        assert c_run("""
int arr[3] = {7, 8, 9};
int main(void) { return 1[arr]; }""") == 8

    def test_string_literal_global(self, c_run):
        assert c_run("""
char *message = 0;
int length(char *s) {
    int n = 0;
    while (s[n]) n++;
    return n;
}
int main(void) {
    return length("liquid");
}""") == 6

    def test_local_string_array_copy(self, c_run):
        assert c_run("""
int main(void) {
    char buf[6] = "ab";
    return buf[0] + buf[1] + buf[2];
}""") == ord("a") + ord("b")

    def test_bubble_sort(self, c_run):
        assert c_run("""
int data[6] = {5, 2, 6, 1, 4, 3};
int main(void) {
    for (int i = 0; i < 6; i++)
        for (int j = 0; j + 1 < 6 - i; j++)
            if (data[j] > data[j + 1]) {
                int tmp = data[j];
                data[j] = data[j + 1];
                data[j + 1] = tmp;
            }
    /* verify sorted and encode first/last */
    for (int i = 0; i + 1 < 6; i++)
        if (data[i] > data[i + 1]) return -1;
    return data[0] * 10 + data[5];
}""") == 16
