"""Differential testing: random C expressions vs a Python oracle.

Hypothesis builds random arithmetic expression trees; each is compiled
by the mini-C compiler, executed on the simulated LEON (through the Sim
box, so the whole CPU/cache/bus stack is under test), and compared to
Python evaluating the same tree with C's 32-bit wrap-around semantics.
This is the style of testing that qualifies compilers and ISA simulators
against each other — any divergence in parser, codegen, the assembler,
the linker, or the instruction semantics shows up as a value mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sim import Simulator
from repro.toolchain.driver import compile_c_program
from repro.utils import s32, u32

# ---------------------------------------------------------------------------
# Expression trees
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Node:
    op: str                 # 'const' | 'var' | binary op | unary op
    value: int = 0
    left: "Node | None" = None
    right: "Node | None" = None


_BINOPS = ["+", "-", "*", "&", "|", "^", "<<", ">>", "/", "%"]
_UNOPS = ["-", "~", "!"]

#: Variables available to expressions, with fixed interesting values.
VARIABLES = {
    "va": 7,
    "vb": -13,
    "vc": 100000,
    "vd": 0,
    "ve": -1,
}


def _nodes(max_depth: int):
    constants = st.integers(min_value=-100, max_value=100).map(
        lambda v: Node("const", v))
    variables = st.sampled_from(sorted(VARIABLES)).map(
        lambda name: Node("var:" + name))
    leaves = st.one_of(constants, variables)

    def extend(children):
        unary = st.builds(lambda op, node: Node(op, 0, node),
                          st.sampled_from(_UNOPS), children)
        binary = st.builds(lambda op, a, b: Node(op, 0, a, b),
                           st.sampled_from(_BINOPS), children, children)
        return st.one_of(unary, binary)

    return st.recursive(leaves, extend, max_leaves=12)


def to_c(node: Node) -> str:
    if node.op == "const":
        return str(node.value)
    if node.op.startswith("var:"):
        return node.op[4:]
    if node.right is None:
        # Space after the operator: "-(-1)" must not lex as "--".
        return f"({node.op} {to_c(node.left)})"
    return f"({to_c(node.left)} {node.op} {to_c(node.right)})"


def evaluate(node: Node) -> int:
    """Python oracle with C's int semantics (32-bit wrap, shifts masked
    to 0..31 as SPARC does, division truncating toward zero, x/0 == 0 by
    our divide-guard convention below)."""
    if node.op == "const":
        return s32(node.value)
    if node.op.startswith("var:"):
        return s32(VARIABLES[node.op[4:]])
    if node.right is None:
        inner = evaluate(node.left)
        if node.op == "-":
            return s32(-inner)
        if node.op == "~":
            return s32(~inner)
        return int(inner == 0)  # !
    a, b = evaluate(node.left), evaluate(node.right)
    op = node.op
    if op == "+":
        return s32(a + b)
    if op == "-":
        return s32(a - b)
    if op == "*":
        return s32(a * b)
    if op == "&":
        return s32(a & b)
    if op == "|":
        return s32(a | b)
    if op == "^":
        return s32(a ^ b)
    if op == "<<":
        return s32(u32(a) << (u32(b) & 31))
    if op == ">>":
        return s32(a >> (u32(b) & 31))  # arithmetic shift on signed int
    if op == "/":
        if b == 0:
            return 0
        quotient = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            quotient = -quotient
        # SPARC SDIV saturates on 32-bit overflow (e.g. INT_MIN / -1).
        return max(-0x8000_0000, min(0x7FFF_FFFF, quotient))
    if op == "%":
        if b == 0:
            return 0
        quotient = evaluate(Node("/", 0, node.left, node.right))
        # Matches the compiler's a - (a/b)*b with a wrapping multiply.
        return s32(a - s32(quotient * b))
    raise AssertionError(op)


def guard_divisions(node: Node) -> Node:
    """Rewrite x / y into x / (y | 1 == 0 ? 1 : y) at the C level is
    messy; instead, wrap divisor in `(y ? y : 1)` so both sides agree on
    a divide-by-zero convention without trapping."""
    if node.op in ("/", "%"):
        left = guard_divisions(node.left)
        right = guard_divisions(node.right)
        return Node(node.op, 0, left, _nonzero(right))
    if node.op.startswith("var") or node.op == "const":
        return node
    if node.right is None:
        return Node(node.op, node.value, guard_divisions(node.left))
    return Node(node.op, node.value, guard_divisions(node.left),
                guard_divisions(node.right))


def _nonzero(node: Node) -> Node:
    # (n ? n : 1) in the oracle == special 'nz' node
    return Node("nz", 0, node)


def _eval_with_nz(node: Node) -> int:
    if node.op == "nz":
        inner = _eval_with_nz(node.left)
        return inner if inner != 0 else 1
    if node.op in ("const",) or node.op.startswith("var:"):
        return evaluate(node)
    if node.right is None and node.op != "nz":
        rebuilt = Node(node.op, node.value,
                       _as_const(_eval_with_nz(node.left)))
        return evaluate(rebuilt)
    rebuilt = Node(node.op, node.value,
                   _as_const(_eval_with_nz(node.left)),
                   _as_const(_eval_with_nz(node.right)))
    return evaluate(rebuilt)


def _as_const(value: int) -> Node:
    return Node("const", value)


def _to_c_with_nz(node: Node) -> str:
    if node.op == "nz":
        inner = _to_c_with_nz(node.left)
        return f"({inner} ? {inner} : 1)"
    if node.op == "const":
        return str(node.value)
    if node.op.startswith("var:"):
        return node.op[4:]
    if node.right is None:
        return f"({node.op} {_to_c_with_nz(node.left)})"
    return f"({_to_c_with_nz(node.left)} {node.op} " \
           f"{_to_c_with_nz(node.right)})"


# A single simulator reused across examples (programs reload cleanly).
_SIMULATOR = Simulator(capture_memory_trace=False)


def run_expression(expr_c: str) -> int:
    declarations = "\n".join(f"int {name} = {value};"
                             for name, value in VARIABLES.items())
    source = f"""
{declarations}
int main(void) {{
    return {expr_c};
}}
"""
    image = compile_c_program(source)
    report = _SIMULATOR.run(image, max_instructions=500_000)
    return s32(report.result_word)


class TestDifferential:
    @given(tree=_nodes(4))
    @settings(max_examples=120, deadline=None)
    def test_random_expressions_match_oracle(self, tree):
        guarded = guard_divisions(tree)
        expected = s32(_eval_with_nz(guarded))
        got = run_expression(_to_c_with_nz(guarded))
        assert got == expected, _to_c_with_nz(guarded)

    @pytest.mark.parametrize("expr,expected", [
        ("(va + vb) * vc", s32((7 - 13) * 100000)),
        ("ve >> 4", -1),
        ("(ve & 0x7fffffff) >> 4", 0x07FFFFFF),
        ("vb / va", -1),
        ("vb % va", -6),
        ("~vd + !vd", 0),
        ("(1 << 31) >> 31", -1),
    ])
    def test_known_corner_cases(self, expr, expected):
        assert run_expression(expr) == expected
