"""Compiler front-end unit tests: lexer, parser errors, sema errors,
register-stack spilling."""

import pytest

from repro.toolchain.cc import compile_c, parse, tokenize
from repro.toolchain.cc.cast import CompileError, CType
from repro.toolchain.cc.lexer import LexError


class TestLexer:
    def test_tokens_and_lines(self):
        tokens = tokenize("int x = 1;\nreturn x;")
        kinds = [(t.kind, t.text) for t in tokens[:4]]
        assert kinds == [("kw", "int"), ("ident", "x"), ("op", "="),
                         ("num", "1")]
        assert tokens[5].line == 2

    def test_comments_removed_lines_preserved(self):
        tokens = tokenize("// comment\n/* multi\nline */ int x;")
        assert tokens[0].text == "int"
        assert tokens[0].line == 3

    def test_numeric_bases_and_suffixes(self):
        values = [t.value for t in tokenize("10 0x10 0b10 10u 10UL")
                  if t.kind == "num"]
        assert values == [10, 16, 2, 10, 10]

    def test_char_escapes(self):
        values = [t.value for t in tokenize(r"'a' '\n' '\0' '\\' '\x41'")
                  if t.kind == "num"]
        assert values == [97, 10, 0, 92, 65]

    def test_string_literal_decoding(self):
        token = next(t for t in tokenize(r'"a\tb\n"') if t.kind == "string")
        assert token.value == "a\tb\n"

    def test_three_char_operators(self):
        texts = [t.text for t in tokenize("a <<= 1; b >>= 2;")
                 if t.kind == "op"]
        assert "<<=" in texts and ">>=" in texts

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("int x; /* oops")

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("int @x;")

    def test_preprocessor_lines_skipped(self):
        tokens = tokenize("#include <stdio.h>\nint x;")
        assert tokens[0].text == "int"

    def test_comment_like_text_in_strings_survives(self):
        token = next(t for t in tokenize('"not // a comment"')
                     if t.kind == "string")
        assert token.value == "not // a comment"


class TestParserErrors:
    @pytest.mark.parametrize("source", [
        "int main(void) { return 1 }",          # missing semicolon
        "int main(void) { if (1 return 2; }",   # missing paren
        "int main(void) { int; }",              # missing declarator
        "int main(void) {",                     # unterminated block
        "int main(void) { break; }",            # break outside loop
        "int main(void) { continue; }",
        "int 5x(void) { return 0; }",           # bad name
        "int a[0];",                            # zero-length array
    ])
    def test_rejected(self, source):
        with pytest.raises(CompileError):
            unit = parse(source)
            from repro.toolchain.cc import analyze
            analyze(unit)

    def test_error_reports_line(self):
        with pytest.raises(CompileError) as err:
            parse("int main(void) {\n  int x;\n  x = ;\n}")
        assert err.value.line == 3


class TestSemaErrors:
    @pytest.mark.parametrize("source,fragment", [
        ("int main(void) { return y; }", "undeclared"),
        ("int main(void) { int x; int x; return 0; }", "redefinition"),
        ("int x; int x; int main(void) { return 0; }", "redefinition"),
        ("int main(void) { 5 = 6; return 0; }", "lvalue"),
        ("int main(void) { int x; return *x; }", "dereference"),
        ("int main(void) { int x; return x[0]; }", "subscript"),
        ("void f(void) { return 1; } int main(void) { return 0; }",
         "void function"),
        ("int f(void) { return; } int main(void) { return 0; }",
         "returns nothing"),
        ("int main(void) { void v; return 0; }", "void"),
        ("int main(void) { int a[2]; int b[2]; a = b; return 0; }",
         "array"),
        ("int main(void) { int *p; int *q; return p * q; }", "pointer"),
    ])
    def test_rejected_with_message(self, source, fragment):
        from repro.toolchain.cc import analyze
        with pytest.raises(CompileError) as err:
            analyze(parse(source))
        assert fragment.lower() in str(err.value).lower()


class TestGeneratedCodeShape:
    def test_function_prologue_epilogue(self):
        asm = compile_c("int main(void) { return 0; }")
        assert "save %sp, -" in asm
        assert "ret" in asm
        assert "restore" in asm

    def test_frame_size_8_byte_aligned(self):
        import re
        asm = compile_c("""
int main(void) { int a, b, c; a = b = c = 1; return a; }""")
        match = re.search(r"save %sp, -(\d+), %sp", asm)
        assert match and int(match.group(1)) % 8 == 0
        assert int(match.group(1)) >= 64 + 12

    def test_strength_reduction_avoids_division(self):
        asm = compile_c("""
unsigned main(void) { unsigned i = 100; return i % 1024 + i / 8 + i * 4; }""")
        assert "udiv" not in asm and "sdiv" not in asm
        assert "umul" not in asm and "smul" not in asm

    def test_non_power_of_two_keeps_division(self):
        asm = compile_c("unsigned main(void) { unsigned i = 9; return i / 7; }")
        assert "udiv" in asm

    def test_builtin_custom_emits_cpop(self):
        asm = compile_c("""
int main(void) { return __builtin_custom(2, 3, 4); }""")
        assert "custom 2," in asm

    def test_globals_in_data_section(self):
        asm = compile_c("int g = 5;\nint main(void) { return g; }")
        assert ".data" in asm
        assert ".global g" in asm

    def test_string_literals_in_rodata(self):
        asm = compile_c("""
char *s = 0;
int main(void) { s = "hey"; return 0; }""")
        assert ".rodata" in asm
        assert '"hey"' in asm


class TestRegisterSpilling:
    def test_deep_expression_compiles_and_runs(self, c_run):
        """An expression needing more than 8 live temporaries forces the
        register stack to spill; result must still be exact."""
        # Parenthesize to force left operands to stay live.
        expr = "(1 + (2 + (3 + (4 + (5 + (6 + (7 + (8 + (9 + (10 + " \
               "(11 + 12)))))))))))"
        assert c_run(f"int main(void) {{ return {expr}; }}") == 78

    def test_spill_emitted_for_deep_expression(self):
        expr = "(1 + (2 + (3 + (4 + (5 + (6 + (7 + (8 + (9 + (10 + " \
               "(11 + 12)))))))))))"
        asm = compile_c(f"int main(void) {{ return {expr}; }}")
        assert "st %l" in asm  # at least one spill store

    def test_shallow_expression_never_spills(self):
        asm = compile_c("int main(void) { return (1 + 2) * (3 + 4); }")
        assert "st %l" not in asm

    def test_deep_expression_with_calls(self, c_run):
        assert c_run("""
int f(int x) { return x; }
int main(void) {
    return (f(1) + (f(2) + (f(3) + (f(4) + (f(5) + (f(6) +
           (f(7) + (f(8) + (f(9) + f(10))))))))));
}""") == 55

    def test_deep_lvalue_expression(self, c_run):
        index = "(1 + " * 10 + "(0 - 9)" + ")" * 10  # evaluates to 1
        assert c_run(f"""
int arr[4];
int main(void) {{
    arr[0] = 1;
    arr[{index}] = 41 + arr[0];
    return arr[1];
}}""") == 42
