"""Trace capture and vectorized analysis tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    MemoryTrace,
    TraceRecorder,
    footprint_histogram,
    observed_miss_rate,
    reuse_distances,
    simulate_miss_curve,
    stride_profile,
    working_set_bytes,
)


def make_trace(addresses, writes=None, hits=None) -> MemoryTrace:
    n = len(addresses)
    return MemoryTrace(
        addresses=np.asarray(addresses, dtype=np.uint64),
        sizes=np.full(n, 4, dtype=np.uint8),
        is_write=np.asarray(writes if writes is not None else [False] * n),
        hit=np.asarray(hits if hits is not None else [True] * n),
    )


class TestRecorder:
    def test_records_and_converts(self):
        recorder = TraceRecorder()
        recorder(0x4000_0000, 4, False, True)
        recorder(0x4000_0020, 1, True, False)
        trace = recorder.trace()
        assert len(trace) == 2
        assert trace.addresses[1] == 0x4000_0020
        assert bool(trace.is_write[1])
        assert not bool(trace.hit[1])

    def test_limit_drops_beyond(self):
        recorder = TraceRecorder(limit=3)
        for i in range(10):
            recorder(i * 4, 4, False, True)
        assert len(recorder) == 3
        assert recorder.dropped == 7

    def test_attach_to_controller(self):
        from repro.cache import CacheController, CacheGeometry
        from repro.mem.interface import FlatMemory

        memory = FlatMemory(size=1 << 16, base=0x4000_0000)
        controller = CacheController(CacheGeometry(1024, 32), memory)
        recorder = TraceRecorder().attach(controller)
        controller.read(0x4000_0000, 4)
        controller.read(0x4000_0000, 4)
        trace = recorder.trace()
        assert len(trace) == 2
        assert not bool(trace.hit[0])
        assert bool(trace.hit[1])

    def test_clear(self):
        recorder = TraceRecorder()
        recorder(0, 4, False, True)
        recorder.clear()
        assert len(recorder) == 0


class TestSerialization:
    def test_roundtrip(self):
        trace = make_trace([0x10, 0x20, 0x30], writes=[True, False, True],
                           hits=[False, True, False])
        rebuilt = MemoryTrace.from_bytes(trace.to_bytes())
        assert np.array_equal(rebuilt.addresses, trace.addresses)
        assert np.array_equal(rebuilt.is_write, trace.is_write)
        assert np.array_equal(rebuilt.hit, trace.hit)

    @given(addresses=st.lists(st.integers(0, 2**32 - 1), min_size=0,
                              max_size=200))
    @settings(max_examples=30)
    def test_roundtrip_property(self, addresses):
        trace = make_trace(addresses)
        rebuilt = MemoryTrace.from_bytes(trace.to_bytes())
        assert np.array_equal(rebuilt.addresses, trace.addresses)


class TestReductions:
    def test_working_set(self):
        trace = make_trace([0, 4, 8, 32, 64, 64])
        assert working_set_bytes(trace, line_size=32) == 3 * 32

    def test_working_set_empty(self):
        assert working_set_bytes(make_trace([])) == 0

    def test_footprint_histogram_ordering(self):
        trace = make_trace([0] * 5 + [32] * 3 + [64])
        hist = footprint_histogram(trace, line_size=32)
        assert hist[0] == (0, 5)
        assert hist[1] == (32, 3)

    def test_stride_profile_detects_constant_stride(self):
        trace = make_trace(list(range(0, 4000, 128)))
        strides = stride_profile(trace)
        assert strides[0][0] == 128

    def test_observed_miss_rate(self):
        trace = make_trace([0, 4, 8, 12], hits=[False, True, True, False])
        assert observed_miss_rate(trace) == 0.5

    def test_reuse_distance_simple(self):
        # a b a : reuse distance of the second 'a' is 1 (only b between).
        trace = make_trace([0, 32, 0])
        distances = reuse_distances(trace, line_size=32)
        assert list(distances) == [1]

    def test_splits(self):
        trace = make_trace([0, 4], writes=[True, False])
        assert len(trace.writes) == 1
        assert len(trace.reads) == 1


class TestMissCurve:
    def test_figure8_pattern_knee_at_4kb(self):
        """The paper's access pattern simulated offline: 4 KB working
        set, stride 128 B — thrash below 4 KB, cold misses only at 4 KB+."""
        addresses = []
        for _ in range(5):
            addresses.extend(range(0x4000_0000, 0x4000_0000 + 4096, 128))
        trace = make_trace(addresses)
        curve = simulate_miss_curve(trace, [1024, 2048, 4096, 8192],
                                    line_size=32)
        by_size = {p.cache_bytes: p for p in curve}
        assert by_size[1024].miss_rate == 1.0
        assert by_size[2048].miss_rate == 1.0
        assert by_size[4096].misses == 32   # cold misses only
        assert by_size[8192].misses == 32

    def test_writes_do_not_allocate_in_simulation(self):
        trace = make_trace([0, 0], writes=[True, False])
        curve = simulate_miss_curve(trace, [1024], line_size=32)
        # The read still misses: the preceding write didn't fill the line.
        assert curve[0].misses == 1
        assert curve[0].references == 2

    def test_monotone_for_nested_direct_mapped_power_sweep(self):
        rng = np.random.default_rng(3)
        addresses = (rng.integers(0, 1 << 14, size=2000) * 4).tolist()
        trace = make_trace(addresses)
        curve = simulate_miss_curve(trace, [512, 1024, 2048, 4096, 8192,
                                            16384, 65536], line_size=32)
        # Direct-mapped caches aren't strictly monotone in general, but a
        # cache covering the whole address range must be best.
        assert curve[-1].misses == min(p.misses for p in curve)

    def test_associative_curve_matches_reference_on_small_case(self):
        addresses = [0, 512, 1024, 0, 512, 1024] * 3
        trace = make_trace([0x4000_0000 + a for a in addresses])
        direct = simulate_miss_curve(trace, [1024], line_size=32, ways=1)
        assoc = simulate_miss_curve(trace, [1024], line_size=32, ways=4)
        assert assoc[0].misses < direct[0].misses

    @given(addresses=st.lists(st.integers(0, 1 << 16), min_size=1,
                              max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_direct_mapped_vectorized_matches_naive(self, addresses):
        """The vectorized sort-based simulation equals a dict walk."""
        trace = make_trace([a * 4 for a in addresses])
        [point] = simulate_miss_curve(trace, [1024], line_size=32)
        # naive reference
        sets = 1024 // 32
        state = {}
        misses = 0
        for address in trace.addresses.tolist():
            line = address // 32
            index = line % sets
            if state.get(index) != line:
                misses += 1
                state[index] = line
        assert point.misses == misses
