"""CFG recovery: blocks, delayed branches, annul semantics, dominators."""

from __future__ import annotations

import pytest

from repro.analysis.cfg import InstrKind, build_cfg
from repro.toolchain.asm.parser import assemble
from repro.toolchain.linker import link

BASE = 0x4000_1000


def build(asm_text: str):
    return link([assemble(asm_text, "cfg-test.s")])


def test_straight_line_is_one_block():
    image = build("""
    .text
    .global _start
_start:
    or %g0, 1, %o0
    or %g0, 2, %o1
    add %o0, %o1, %o2
    ta 0
    nop
""")
    cfg = build_cfg(image)
    block = cfg.blocks[cfg.entry]
    # The `ta 0` (trap-always) terminates the block; the trailing nop
    # starts an unreachable one.
    assert block.terminator == "trap"
    assert [i.pc for i in block.instructions] == [
        BASE, BASE + 4, BASE + 8, BASE + 12]
    assert cfg.diagnostics.ok()


def test_delay_slot_belongs_to_cti_block():
    image = build("""
    .text
    .global _start
_start:
    subcc %o0, %o1, %g0
    bne target
    or %g0, 7, %o2
    or %g0, 8, %o3
target:
    ta 0
    nop
""")
    cfg = build_cfg(image)
    branch_block = cfg.blocks[cfg.entry]
    assert branch_block.terminator == "branch"
    # cmp, bne, delay slot — three words in the CTI's block.
    assert len(branch_block.instructions) == 3
    assert branch_block.instructions[-1].pc == BASE + 8
    # Conditional, not annulled: both successors, slot always executes.
    assert sorted(branch_block.successors) == [BASE + 12, BASE + 16]
    assert branch_block.annulled == frozenset()
    assert branch_block.conditional_slot is None


def test_annulled_always_branch_skips_slot():
    image = build("""
    .text
    .global _start
_start:
    ba,a target
    or %g0, 9, %o5
target:
    ta 0
    nop
""")
    cfg = build_cfg(image)
    block = cfg.blocks[cfg.entry]
    # ba,a never executes its delay slot and has one successor.
    assert block.successors == [BASE + 8]
    assert block.annulled == frozenset({BASE + 4})
    assert [i.pc for i in block.executed()] == [BASE]


def test_annulled_conditional_marks_slot_conditional():
    image = build("""
    .text
    .global _start
_start:
    subcc %o0, %o1, %g0
    be,a target
    or %g0, 9, %o5
    or %g0, 1, %o4
target:
    ta 0
    nop
""")
    cfg = build_cfg(image)
    block = cfg.blocks[cfg.entry]
    assert block.conditional_slot == BASE + 8
    assert block.annulled == frozenset()
    assert sorted(block.successors) == [BASE + 12, BASE + 16]


def test_call_edges_and_function_partition():
    image = build("""
    .text
    .global _start
_start:
    call fn
    nop
    ta 0
    nop
fn:
    retl
    nop
""")
    cfg = build_cfg(image)
    entry_block = cfg.blocks[cfg.entry]
    fn_addr = image.symbols["fn"]
    assert entry_block.terminator == "call"
    assert entry_block.call_target == fn_addr
    # The call falls through to the next block, not into the callee.
    assert entry_block.successors == [BASE + 8]
    assert cfg.function_entries == sorted({cfg.entry, fn_addr})
    ret_block = cfg.blocks[fn_addr]
    assert ret_block.terminator == "retl"
    assert ret_block.is_return


def test_cti_in_delay_slot_is_an_error():
    image = build("""
    .text
    .global _start
_start:
    ba out
    ba out
    nop
out:
    ta 0
    nop
""")
    cfg = build_cfg(image)
    errors = cfg.diagnostics.by_code("cti-in-delay-slot")
    assert len(errors) == 1
    assert errors[0].pc == BASE + 4
    assert errors[0].is_error


def test_branch_target_outside_text_is_an_error():
    # ba .-0x4000 — encoded directly, since the linker refuses to emit a
    # branch to an address it cannot resolve.  The target lands well
    # before the text base.
    image = build("""
    .text
    .global _start
_start:
    .word 0x10BFF000
    nop
    ta 0
    nop
""")
    cfg = build_cfg(image)
    assert cfg.diagnostics.by_code("branch-target-outside-text")


def test_unknown_opcode_becomes_word_with_warning():
    image = build("""
    .text
    .global _start
_start:
    .word 0x1F800000
    ta 0
    nop
""")
    cfg = build_cfg(image)
    assert cfg.instructions[BASE].kind == InstrKind.UNKNOWN
    warnings = cfg.diagnostics.by_code("unknown-opcode")
    assert warnings and warnings[0].pc == BASE
    assert not warnings[0].is_error  # never fatal mid-analysis


def test_dominator_tree_diamond():
    image = build("""
    .text
    .global _start
_start:
    subcc %o0, %o1, %g0
    be right
    nop
    or %g0, 1, %o2
    ba join
    nop
right:
    or %g0, 2, %o2
join:
    ta 0
    nop
""")
    cfg = build_cfg(image)
    idom = cfg.dominator_tree(cfg.entry)
    join = image.symbols["join"]
    right = image.symbols["right"]
    left = BASE + 12
    assert idom[cfg.entry] is None
    assert idom[left] == cfg.entry
    assert idom[right] == cfg.entry
    # Neither branch arm dominates the join — only the fork does.
    assert idom[join] == cfg.entry
    assert cfg.dominates(cfg.entry, cfg.entry, join)
    assert not cfg.dominates(cfg.entry, left, join)


def test_reachable_follows_call_edges():
    image = build("""
    .text
    .global _start
_start:
    call fn
    nop
    ta 0
    nop
fn:
    retl
    nop
dead:
    or %g0, 1, %o0
    ta 0
    nop
""")
    cfg = build_cfg(image)
    reachable = cfg.reachable()
    assert image.symbols["fn"] in reachable
    assert image.symbols["dead"] not in reachable


def test_nearest_symbol_offsets():
    image = build("""
    .text
    .global _start
_start:
    nop
    nop
    ta 0
    nop
""")
    cfg = build_cfg(image)
    assert cfg.nearest_symbol(BASE) == "_start"
    assert cfg.nearest_symbol(BASE + 8) == "_start+0x8"


@pytest.mark.parametrize("name", ["xtea", "qsort_rec"])
def test_registry_kernels_recover_cleanly(name):
    from repro.workloads import get

    cfg = build_cfg(get(name).image(0))
    # Real compiled kernels: multiple functions, no structural errors.
    assert len(cfg.function_entries) >= 2
    assert cfg.diagnostics.ok()
