"""The verifier over the real registry: every kernel must be
error-free, and the wiring (Workload.analyze, obs export, CLI, matrix
sweep) must agree on that fact."""

from __future__ import annotations

import json

import pytest

from repro.obs import MetricsRegistry, collect_analysis
from repro.workloads import DEFAULT_SEED, all_workloads, get

KERNEL_NAMES = [wl.name for wl in all_workloads()]


def test_registry_has_the_expected_kernels():
    assert len(KERNEL_NAMES) == 7


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_every_registry_kernel_verifies_without_errors(name):
    report = get(name).analyze()
    assert report.subject == name
    assert not report.errors, report.render_text()


def test_workload_analyze_respects_seed():
    report = get("crc32").analyze(seed=DEFAULT_SEED + 1)
    assert not report.errors


def test_collect_analysis_exports_counters():
    registry = MetricsRegistry()
    report = get("xtea").analyze()
    collect_analysis(report, registry)
    counters = registry.snapshot()["counters"]
    assert counters["analysis.errors{subject=xtea}"] == 0
    assert counters["analysis.warnings{subject=xtea}"] == \
        len(report.warnings)
    # Every code appears as a labeled findings series.
    for code, count in report.codes().items():
        key = f"analysis.findings{{code={code},subject=xtea}}"
        assert counters[key] == count


def test_cli_exits_zero_on_clean_registry(capsys):
    from repro.analysis.cli import main

    assert main(["all"]) == 0
    out = capsys.readouterr().out
    for name in KERNEL_NAMES:
        assert name in out


def test_cli_json_artifact(tmp_path, capsys):
    from repro.analysis.cli import main

    artifact = tmp_path / "analysis-report.json"
    assert main(["xtea", "--json", "--sites", "-o", str(artifact)]) == 0
    capsys.readouterr()  # drain
    payload = json.loads(artifact.read_text())
    assert payload["ok"] is True
    [entry] = payload["reports"]
    assert entry["subject"] == "xtea"
    assert entry["ok"] is True
    assert "sites" in entry


def test_cli_rejects_unknown_workload():
    from repro.analysis.cli import main

    with pytest.raises(SystemExit):
        main(["no-such-kernel"])


def test_sweep_matrix_analyze_flag():
    from repro.core import (
        ArchitectureConfig,
        ConfigurationSpace,
        SweepRunner,
    )

    runner = SweepRunner(obs=MetricsRegistry())
    space = ConfigurationSpace(ArchitectureConfig())
    outcome = runner.sweep_matrix([get("fir")], space, analyze=True)
    assert "fir" in outcome.analysis
    assert not outcome.analysis["fir"].errors
    section = outcome.report()["analysis"]["fir"]
    assert section["errors"] == 0
    counters = runner.obs.snapshot()["counters"]
    assert counters["analysis.errors{subject=fir}"] == 0
