"""Dataflow engine: effects, liveness, defined regs, reaching defs.

The interesting cases are SPARC-shaped: register-window renaming across
save/restore, the %y side effect of the multiply unit, condition-code
producers/consumers, annulled and conditional delay slots, and call
summaries clobbering the caller-saved set.
"""

from __future__ import annotations

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import (
    CALL_DEFS,
    REG_ICC,
    REG_Y,
    analyze_function,
    bit,
    block_effects,
    instruction_effect,
    mask_of,
    reg_number,
    shift_across_save,
    shift_across_restore,
)
from repro.toolchain.asm.parser import assemble
from repro.toolchain.linker import link

BASE = 0x4000_1000


def build(asm_text: str):
    return link([assemble(asm_text, "df-test.s")])


def flow(asm_text: str):
    cfg = build_cfg(build(asm_text))
    return analyze_function(cfg, cfg.entry)


def effect_of(asm_line: str):
    image = build(f"""
    .text
    .global _start
_start:
    {asm_line}
    ta 0
    nop
""")
    cfg = build_cfg(image)
    return instruction_effect(cfg.instructions[BASE])


# -- location naming ---------------------------------------------------------

def test_reg_number_aliases():
    assert reg_number("%g0") == 0
    assert reg_number("%o0") == 8
    assert reg_number("%sp") == 14
    assert reg_number("%l3") == 19
    assert reg_number("%fp") == 30
    assert reg_number("%i7") == 31
    assert reg_number("%y") == REG_Y


def test_window_shift_renames_outs_to_ins():
    # After `save`, the caller's %o2 is the callee's %i2; globals and
    # the non-window state (%y, icc) are invariant.
    mask = mask_of([reg_number("%o2"), reg_number("%g3"), REG_Y])
    shifted = shift_across_save(mask)
    assert shifted == mask_of([reg_number("%i2"), reg_number("%g3"), REG_Y])
    # restore is the inverse direction: ins become outs.
    assert shift_across_restore(shifted) & bit(reg_number("%o2"))


# -- instruction effects -----------------------------------------------------

def test_alu_effect_uses_and_defs():
    eff = effect_of("add %o0, %o1, %o2")
    assert eff.uses == mask_of([8, 9])
    assert eff.defs == bit(10)


def test_g0_is_never_defined():
    eff = effect_of("subcc %o0, %o1, %g0")
    assert eff.defs == bit(REG_ICC)  # only the condition codes
    assert not eff.uses & bit(0)


def test_mul_div_touch_y():
    assert effect_of("smul %o0, %o1, %o2").defs & bit(REG_Y)
    assert effect_of("umul %o0, %o1, %o2").defs & bit(REG_Y)
    assert effect_of("udiv %o0, %o1, %o2").uses & bit(REG_Y)
    assert effect_of("rd %y, %o3").uses & bit(REG_Y)
    assert effect_of("wr %o0, 0, %y").defs & bit(REG_Y)


def test_icc_producers_and_consumers():
    assert effect_of("addcc %o0, %o1, %o2").defs & bit(REG_ICC)
    assert effect_of("addx %o0, %o1, %o2").uses & bit(REG_ICC)
    mulscc = effect_of("mulscc %o0, %o1, %o2")
    assert mulscc.uses & bit(REG_Y) and mulscc.defs & bit(REG_Y)
    assert mulscc.uses & bit(REG_ICC) and mulscc.defs & bit(REG_ICC)


def test_store_uses_its_data_register():
    eff = effect_of("st %o3, [%o0 + 4]")
    assert eff.uses & bit(11)
    assert eff.uses & bit(8)
    assert eff.defs == 0


def test_ldd_defines_the_register_pair():
    eff = effect_of("ldd [%o0], %o2")
    assert eff.defs == mask_of([10, 11])


def test_custom_op_uses_all_three_operands():
    # Liquid custom ops are modeled as read-modify-write on rd.
    eff = effect_of("custom 2, %o0, %o1, %o2")
    assert eff.uses == mask_of([8, 9, 10])
    assert eff.defs == bit(10)


def test_save_restore_carry_window_delta():
    assert effect_of("save %sp, -96, %sp").window == 1
    assert effect_of("restore %g0, 0, %g0").window == -1


# -- block effects -----------------------------------------------------------

def test_annulled_slot_is_dropped_and_conditional_slot_is_may():
    cfg = build_cfg(build("""
    .text
    .global _start
_start:
    ba,a out
    or %g0, 1, %o0
out:
    subcc %o1, 0, %g0
    be,a done
    or %g0, 2, %o2
    nop
done:
    ta 0
    nop
"""))
    annul_block = cfg.blocks[cfg.entry]
    assert [e.pc for e in block_effects(annul_block)] == [BASE]
    cond_block = cfg.blocks[BASE + 8]
    slot = [e for e in block_effects(cond_block) if e.pc == BASE + 16]
    assert len(slot) == 1 and slot[0].may
    # A "may" def does not kill downstream liveness but its uses count.
    assert slot[0].defs == bit(10)


def test_call_block_appends_clobber_summary():
    cfg = build_cfg(build("""
    .text
    .global _start
_start:
    call fn
    nop
    ta 0
    nop
fn:
    retl
    nop
"""))
    effects = block_effects(cfg.blocks[cfg.entry])
    assert effects[-1].instr is None
    assert effects[-1].defs == CALL_DEFS
    assert effects[-1].pc == BASE  # attributed to the call itself


# -- whole-function analyses -------------------------------------------------

def test_liveness_straight_line():
    f = flow("""
    .text
    .global _start
_start:
    or %g0, 5, %l0
    or %g0, 7, %l1
    add %l0, %l1, %o2
    ta 0
    nop
""")
    # Before the add, both sources are live.  Locals are used here
    # because EXIT_LIVE conservatively keeps every out/in live at the
    # trap exit — locals are the only registers that truly die.
    l0, l1 = reg_number("%l0"), reg_number("%l1")
    assert f.live_after[BASE + 4] & bit(l0)
    assert f.live_after[BASE + 4] & bit(l1)
    # After the add the sources are dead (%o2 stays live at exit).
    assert not f.live_after[BASE + 8] & bit(l1)
    assert f.live_after[BASE + 8] & bit(10)


def test_liveness_across_register_window():
    # The leaf writes %i0 (the caller's %o0 return slot) and restores;
    # liveness of the caller's %o0 must translate into the callee's
    # window as %i0 being live.
    f = flow("""
    .text
    .global _start
_start:
    save %sp, -96, %sp
    or %g0, 3, %i0
    ret
    restore %g0, 0, %g0
""")
    # After the save, the write to %i0 must be seen as live (it becomes
    # the caller-visible %o0 on restore, and EXIT_LIVE keeps outs live).
    assert f.live_after[BASE + 4] & bit(reg_number("%i0"))


def test_defined_registers_flag_locals_as_uninitialized():
    f = flow("""
    .text
    .global _start
_start:
    add %l0, 1, %o0
    ta 0
    nop
""")
    entry_in = f.defined[f.entry][0]
    assert not entry_in & bit(reg_number("%l0"))
    assert entry_in & bit(reg_number("%o0"))


def test_reaching_defs_and_def_use_chains():
    f = flow("""
    .text
    .global _start
_start:
    or %g0, 1, %o0
    or %g0, 2, %o0
    add %o0, 0, %o1
    ta 0
    nop
""")
    # Only the second def of %o0 reaches the add.
    assert f.uses_of(BASE + 4) == {BASE + 8}
    assert f.uses_of(BASE) == set()


def test_def_use_chains_merge_over_branches():
    f = flow("""
    .text
    .global _start
_start:
    subcc %o2, 0, %g0
    be other
    or %g0, 1, %o0
    ba join
    or %g0, 2, %o0
other:
    or %g0, 3, %o0
join:
    add %o0, 0, %o1
    ta 0
    nop
""")
    use = BASE + 24
    # The delay-slot def on the taken path (+8), the fall-through def
    # (+16), and the `other` def (+20) all reach the join's use.
    assert f.uses_of(BASE + 16) == {use}
    assert f.uses_of(BASE + 20) == {use}


def test_call_clobber_kills_upstream_defs():
    f = flow("""
    .text
    .global _start
_start:
    or %g0, 9, %o0
    call fn
    nop
    add %o0, 1, %o1
    ta 0
    nop
fn:
    retl
    nop
""")
    # %o0 is clobbered by the call summary, so the pre-call def must
    # NOT be chained to the post-call use.
    assert BASE + 12 not in f.uses_of(BASE)
