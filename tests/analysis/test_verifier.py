"""Machine-code verifier: each lint fires on a crafted program and the
severity policy (structural = error, dataflow = warning) holds."""

from __future__ import annotations

from repro.analysis.verify import analyze_image, verify_image
from repro.toolchain.asm.parser import assemble
from repro.toolchain.linker import link

BASE = 0x4000_1000


def build(asm_text: str):
    return link([assemble(asm_text, "verify-test.s")])


def report_for(asm_text: str):
    return verify_image(build(asm_text), subject="crafted")


def test_clean_program_is_clean():
    report = report_for("""
    .text
    .global _start
_start:
    or %g0, 1, %o0
    ta 0
    nop
""")
    # The crt0-style trailing nop is the only finding.
    assert not report.errors
    assert set(report.codes()) <= {"unreachable-block"}


def test_unreachable_block_warns():
    report = report_for("""
    .text
    .global _start
_start:
    ta 0
    nop
dead:
    or %g0, 1, %o0
    ta 0
    nop
""")
    findings = report.by_code("unreachable-block")
    assert findings and all(not f.is_error for f in findings)


def test_uninit_read_warns_on_local():
    report = report_for("""
    .text
    .global _start
_start:
    add %l5, 1, %o0
    ta 0
    nop
""")
    findings = report.by_code("uninit-read")
    assert len(findings) == 1
    assert findings[0].pc == BASE
    assert "%l5" in findings[0].message
    assert not findings[0].is_error


def test_uninit_read_respects_both_paths():
    # %l0 written on only one arm of a diamond -> may-uninit at join.
    report = report_for("""
    .text
    .global _start
_start:
    subcc %o0, 0, %g0
    be join
    nop
    or %g0, 1, %l0
join:
    add %l0, 1, %o1
    ta 0
    nop
""")
    assert report.by_code("uninit-read")
    # Same shape, both arms write -> clean.
    clean = report_for("""
    .text
    .global _start
_start:
    subcc %o0, 0, %g0
    be other
    nop
    or %g0, 1, %l0
    ba join
    nop
other:
    or %g0, 2, %l0
join:
    add %l0, 1, %o1
    ta 0
    nop
""")
    assert not clean.by_code("uninit-read")


def test_dead_store_warns_on_overwritten_local():
    report = report_for("""
    .text
    .global _start
_start:
    or %g0, 1, %l0
    or %g0, 2, %l0
    add %l0, 0, %o0
    ta 0
    nop
""")
    findings = report.by_code("dead-store")
    assert len(findings) == 1
    assert findings[0].pc == BASE
    assert not findings[0].is_error


def test_dead_store_silent_when_outs_escape():
    # %o registers stay live at the exit (EXIT_LIVE), so a last write
    # to an out is never a dead store.
    report = report_for("""
    .text
    .global _start
_start:
    or %g0, 1, %o0
    ta 0
    nop
""")
    assert not report.by_code("dead-store")


def test_window_imbalance_on_missing_restore():
    report = report_for("""
    .text
    .global _start
_start:
    call fn
    nop
    ta 0
    nop
fn:
    save %sp, -96, %sp
    retl
    nop
""")
    findings = report.by_code("window-imbalance")
    assert findings and all(f.is_error for f in findings)


def test_window_imbalance_on_bare_restore():
    report = report_for("""
    .text
    .global _start
_start:
    restore %g0, 0, %g0
    ta 0
    nop
""")
    findings = report.by_code("window-imbalance")
    assert findings and findings[0].is_error
    assert "without a matching save" in findings[0].message


def test_balanced_save_restore_is_clean():
    report = report_for("""
    .text
    .global _start
_start:
    call fn
    nop
    ta 0
    nop
fn:
    save %sp, -96, %sp
    or %g0, 1, %i0
    ret
    restore %g0, 0, %g0
""")
    assert not report.by_code("window-imbalance")


def test_misaligned_mem_on_known_address():
    report = report_for("""
    .text
    .global _start
_start:
    sethi %hi(0x40000000), %o0
    or %o0, 2, %o0
    ld [%o0], %o1
    ta 0
    nop
""")
    findings = report.by_code("misaligned-mem")
    assert len(findings) == 1
    assert findings[0].is_error
    assert "0x40000002" in findings[0].message


def test_aligned_and_unknown_addresses_are_clean():
    report = report_for("""
    .text
    .global _start
_start:
    sethi %hi(0x40000000), %o0
    ld [%o0 + 8], %o1
    ld [%o2 + 2], %o3
    ta 0
    nop
""")
    # %o2 is unknown: no guessing, no finding.
    assert not report.by_code("misaligned-mem")


def test_odd_register_pair_is_an_error():
    report = report_for("""
    .text
    .global _start
_start:
    ldd [%o0], %o3
    ta 0
    nop
""")
    findings = report.by_code("odd-register-pair")
    assert findings and findings[0].is_error


def test_analyze_image_exposes_functions():
    analysis = analyze_image(build("""
    .text
    .global _start
_start:
    call fn
    nop
    ta 0
    nop
fn:
    retl
    nop
"""), subject="crafted")
    assert analysis.report.subject == "crafted"
    assert len(analysis.functions) == 2
    assert {f.entry for f in analysis.functions} == {
        BASE, analysis.cfg.function_entries[1]}
    assert analysis.functions[0].name == "_start"
