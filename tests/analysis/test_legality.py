"""Rewriter legality checker: the acceptance criterion of this layer.

A legal MAC fusion site must be accepted; illegal variants (live
temporary, memory op inside the region, region spanning a block
boundary, non-contiguous PCs) must each be rejected with a reason that
names the violated condition — and the verified rewriter must apply
exactly at the accepted sites.
"""

from __future__ import annotations

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import REG_Y, analyze_function, reg_number
from repro.analysis.legality import (
    FusionCandidate,
    check_fusion,
    legal_sites,
    mac_candidates,
)
from repro.core.rewriter import MAC_RECIPE
from repro.toolchain.asm.parser import assemble
from repro.toolchain.linker import link

BASE = 0x4000_1000

# smul/add with the %o3 temporary genuinely dead afterwards (the
# explicit re-zeroing kills it past the conservative EXIT_LIVE mask).
LEGAL_MAC = """\
    .text
    .global _start
_start:
    smul %o0, %o1, %o3
    add %o2, %o3, %o2
    or %g0, 0, %o3
    ta 0
    nop
"""

# Identical region, but %o3 is read again afterwards: the killed
# temporary escapes, so fusing would change the program.
ILLEGAL_MAC = """\
    .text
    .global _start
_start:
    smul %o0, %o1, %o3
    add %o2, %o3, %o2
    add %o3, %o4, %o5
    ta 0
    nop
"""


def build(asm_text: str):
    return link([assemble(asm_text, "legality-test.s")])


def flow_of(asm_text: str):
    cfg = build_cfg(build(asm_text))
    return analyze_function(cfg, cfg.entry)


def test_mac_finder_spots_the_shape():
    f = flow_of(LEGAL_MAC)
    candidates = mac_candidates(f.blocks)
    assert len(candidates) == 1
    cand = candidates[0]
    assert cand.pcs == (BASE, BASE + 4)
    assert cand.inputs == (reg_number("%o0"), reg_number("%o1"),
                           reg_number("%o2"))
    assert cand.output == reg_number("%o2")
    assert REG_Y in cand.killed  # smul's high half dies with the fusion


def test_legal_fusion_is_accepted():
    f = flow_of(LEGAL_MAC)
    [cand] = mac_candidates(f.blocks)
    result = check_fusion(f, cand)
    assert result.ok, result.render()
    assert result.render().startswith("LEGAL:")


def test_live_temporary_is_rejected():
    f = flow_of(ILLEGAL_MAC)
    [cand] = mac_candidates(f.blocks)
    result = check_fusion(f, cand)
    assert not result.ok
    assert any("live after the region" in r for r in result.reasons)
    assert result.render().startswith("ILLEGAL:")


def test_memory_op_in_region_is_rejected():
    f = flow_of("""
    .text
    .global _start
_start:
    smul %o0, %o1, %o3
    ld [%o4], %o5
    add %o2, %o3, %o2
    or %g0, 0, %o3
    ta 0
    nop
""")
    cand = FusionCandidate(pcs=(BASE, BASE + 4, BASE + 8),
                           inputs=(8, 9, 10), output=10,
                           killed=(11, REG_Y))
    result = check_fusion(f, cand)
    assert not result.ok
    assert any("side effects" in r for r in result.reasons)


def test_region_spanning_blocks_is_rejected():
    f = flow_of("""
    .text
    .global _start
_start:
    smul %o0, %o1, %o3
    ba next
    nop
next:
    add %o2, %o3, %o2
    ta 0
    nop
""")
    cand = FusionCandidate(pcs=(BASE, BASE + 4, BASE + 8, BASE + 12),
                           inputs=(8, 9, 10), output=10,
                           killed=(11, REG_Y))
    result = check_fusion(f, cand)
    assert not result.ok
    assert any("control-transfer" in r or "block boundary" in r
               for r in result.reasons)


def test_non_contiguous_region_is_rejected():
    f = flow_of(LEGAL_MAC)
    cand = FusionCandidate(pcs=(BASE, BASE + 8), inputs=(8, 9, 10),
                           output=10, killed=(11, REG_Y))
    result = check_fusion(f, cand)
    assert not result.ok
    assert "region is not contiguous" in result.reasons


def test_foreign_register_read_is_rejected():
    # Claim fewer inputs than the region reads: the checker must call
    # out the unexpected operand rather than accept silently.
    f = flow_of(LEGAL_MAC)
    cand = FusionCandidate(pcs=(BASE, BASE + 4),
                           inputs=(8, 9),  # %o2 accumulator omitted
                           output=10, killed=(11, REG_Y))
    result = check_fusion(f, cand)
    assert not result.ok
    assert any("neither an input nor produced" in r
               for r in result.reasons)


def test_legal_sites_end_to_end():
    legal = legal_sites(build(LEGAL_MAC))
    assert len(legal) == 1 and legal[0].ok
    illegal = legal_sites(build(ILLEGAL_MAC))
    assert len(illegal) == 1 and not illegal[0].ok


# -- verified rewriting -------------------------------------------------------

def test_verified_rewrite_applies_at_legal_site():
    image = build(LEGAL_MAC)
    new_text, count, skipped = MAC_RECIPE.verified_rewrite_asm(
        LEGAL_MAC, image)
    assert count == 1 and not skipped
    assert "custom 2, %o0, %o1, %o2" in new_text
    assert "smul" not in new_text


def test_verified_rewrite_skips_illegal_site():
    image = build(ILLEGAL_MAC)
    new_text, count, skipped = MAC_RECIPE.verified_rewrite_asm(
        ILLEGAL_MAC, image)
    assert count == 0
    assert len(skipped) == 1 and not skipped[0].ok
    assert new_text == ILLEGAL_MAC  # untouched


def test_verified_rewrite_mixed_program():
    mixed = """\
    .text
    .global _start
_start:
    smul %o0, %o1, %o3
    add %o2, %o3, %o2
    or %g0, 0, %o3
    smul %o0, %o1, %l1
    add %l0, %l1, %l0
    add %l1, %o4, %o5
    ta 0
    nop
"""
    image = build(mixed)
    new_text, count, skipped = MAC_RECIPE.verified_rewrite_asm(
        mixed, image)
    # First site legal, second leaks its %l1 temporary.
    assert count == 1
    assert len(skipped) == 1
    assert "custom 2, %o0, %o1, %o2" in new_text
    assert "smul %o0, %o1, %l1" in new_text  # second site untouched


def test_unverified_rewrite_would_have_broken_it():
    """The regression the legality layer exists to prevent: the naive
    textual peephole rewrites the illegal program too."""
    naive_text, naive_count = MAC_RECIPE.rewrite_asm(ILLEGAL_MAC)
    assert naive_count == 1  # blindly applied
    _, verified_count, _ = MAC_RECIPE.verified_rewrite_asm(
        ILLEGAL_MAC, build(ILLEGAL_MAC))
    assert verified_count == 0
