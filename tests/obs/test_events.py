"""EventTrace unit tests: bounded ring, cycle stamps, JSONL export."""

import json

import pytest

from repro.obs.events import Event, EventTrace


class TestEventTrace:
    def test_records_in_order_with_fields(self):
        trace = EventTrace()
        trace.record(10, "dispatch", entry=0x4000_1000)
        trace.record(250, "trap", tt=0x83, pc=0x4000_1040)
        events = trace.events()
        assert [e.kind for e in events] == ["dispatch", "trap"]
        assert events[1].as_dict() == {
            "cycle": 250, "kind": "trap", "pc": 0x4000_1040, "tt": 0x83}

    def test_ring_is_bounded_and_counts_drops(self):
        trace = EventTrace(capacity=4)
        for i in range(10):
            trace.record(i, "tick")
        assert len(trace) == 4
        assert trace.recorded == 10
        assert trace.dropped == 6
        # Oldest dropped, newest kept.
        assert [e.cycle for e in trace.events()] == [6, 7, 8, 9]

    def test_kind_filter(self):
        trace = EventTrace()
        trace.record(1, "trap", tt=1)
        trace.record(2, "done")
        trace.record(3, "trap", tt=2)
        assert [e.cycle for e in trace.events("trap")] == [1, 3]

    def test_disabled_trace_records_nothing(self):
        trace = EventTrace(enabled=False)
        trace.record(1, "trap")
        assert len(trace) == 0
        assert trace.recorded == 0
        assert trace.to_jsonl() == ""

    def test_clear(self):
        trace = EventTrace()
        trace.record(1, "a")
        trace.clear()
        assert len(trace) == 0
        assert trace.dropped == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventTrace(capacity=0)

    def test_jsonl_round_trips_and_is_sorted(self):
        trace = EventTrace()
        trace.record(5, "dispatch", entry=64)
        trace.record(9, "done", cycles=4)
        lines = trace.to_jsonl().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {"cycle": 5, "entry": 64, "kind": "dispatch"}
        # Canonical separators: byte-stable across runs.
        assert lines[1] == '{"cycle":9,"cycles":4,"kind":"done"}'

    def test_event_fields_sorted_for_determinism(self):
        trace = EventTrace()
        trace.record(1, "x", b=2, a=1)
        assert trace.events()[0].fields == (("a", 1), ("b", 2))

    def test_events_are_immutable(self):
        event = Event(1, "x")
        with pytest.raises(Exception):
            event.cycle = 2
