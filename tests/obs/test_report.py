"""Report rendering tests: text layout, JSON stability, run diffing."""

import json

from repro.obs.metrics import MetricsRegistry
from repro.obs.report import diff_reports, render_json, render_text


def _snapshot():
    registry = MetricsRegistry()
    registry.counter("cache.read_misses", cache="dcache").inc(33)
    registry.counter("pipeline.cycles").inc(2480)
    registry.gauge("pipeline.occupancy", stage="EX").set(0.75)
    registry.histogram("cache.miss_cycles", cache="dcache").observe(12)
    return registry.snapshot()


class TestRenderText:
    def test_one_series_per_line_aligned(self):
        text = render_text(_snapshot(), title="point 0")
        lines = text.splitlines()
        assert lines[0] == "=== point 0 ==="
        assert len(lines) == 5  # title + 2 counters + 1 gauge + 1 histogram
        # Values align: every value starts at the same column.
        import re

        columns = {re.match(r"\S+ +", line).end() for line in lines[1:]}
        assert len(columns) == 1

    def test_counters_sorted(self):
        text = render_text(_snapshot())
        assert text.index("cache.read_misses") < text.index("pipeline.cycles")

    def test_histogram_line_summarises(self):
        text = render_text(_snapshot())
        assert "count=1 mean=12.00" in text

    def test_empty_snapshot(self):
        assert render_text({"counters": {}, "gauges": {},
                            "histograms": {}}) == "=== metrics ==="


class TestRenderJson:
    def test_valid_sorted_json(self):
        blob = render_json(_snapshot())
        data = json.loads(blob)
        assert data["counters"]["pipeline.cycles"] == 2480
        assert blob == render_json(_snapshot())  # byte-stable


class TestDiffReports:
    def test_zero_deltas_dropped_real_movement_kept(self):
        before = MetricsRegistry()
        before.counter("moving").inc(10)
        before.counter("steady").inc(5)
        after = MetricsRegistry()
        after.counter("moving").inc(14)
        after.counter("steady").inc(5)
        text = diff_reports(after.snapshot(), before.snapshot(),
                            title="run B - run A")
        assert "=== run B - run A ===" in text
        assert "moving" in text
        assert "steady" not in text

    def test_empty_histogram_deltas_dropped(self):
        registry = MetricsRegistry()
        registry.histogram("lat").observe(3)
        snap = registry.snapshot()
        text = diff_reports(snap, snap)
        assert "lat" not in text
