"""Collector tests: native counters fold into registry series, and the
per-point program-window snapshot is deterministic and complete."""

from types import SimpleNamespace

from repro.cache.cache import CacheGeometry
from repro.cache.controller import CacheController
from repro.core.sim import Simulator
from repro.obs.collect import (
    PIPELINE_STAGES,
    collect_ahb,
    collect_cache,
    collect_transport,
    point_snapshot,
    simulator_snapshot,
    zero_transport_series,
)
from repro.obs.metrics import MetricsRegistry
from repro.toolchain.driver import compile_c_program

PROGRAM = """
int main(void) {
    volatile int x = 0;
    int i;
    for (i = 0; i < 50; i++) { x = x + i; }
    return x;
}
"""


class _FlatBacking:
    """Minimal MemoryPort: zero-filled, fixed latency."""

    def read(self, address, size):
        return 0, 2

    def write(self, address, size, value):
        return 2


class TestCacheCollector:
    def test_controller_series_and_miss_histogram(self):
        controller = CacheController(CacheGeometry(size=256, line_size=32),
                                     _FlatBacking(), name="dcache")
        controller.read(0x0, 4)     # miss
        controller.read(0x4, 4)     # hit
        controller.read(0x100, 4)   # miss
        registry = MetricsRegistry()
        collect_cache(controller, registry)
        snap = registry.snapshot()
        assert snap["counters"]["cache.read_misses{cache=dcache}"] == 2
        assert snap["counters"]["cache.read_hits{cache=dcache}"] == 1
        hist = snap["histograms"]["cache.miss_cycles{cache=dcache}"]
        assert hist["count"] == 2
        assert hist["sum"] == controller.miss_cycles_sum > 0

    def test_native_buckets_track_every_miss(self):
        controller = CacheController(CacheGeometry(size=256, line_size=32),
                                     _FlatBacking(), name="icache")
        for i in range(8):
            controller.read(i * 0x100, 4)
        assert sum(controller.miss_cycle_buckets) == 8


class TestDuckTypedCollectors:
    def test_ahb_collector_reads_native_counters(self):
        bus = SimpleNamespace(transfers=10, burst_transfers=3, data_beats=40,
                              wait_states=7, error_count=1)
        registry = MetricsRegistry()
        collect_ahb(bus, registry)
        counters = registry.snapshot()["counters"]
        assert counters["bus.ahb.transfers"] == 10
        assert counters["bus.ahb.wait_states"] == 7
        assert counters["bus.ahb.errors"] == 1

    def test_transport_collector_plain_and_lossy(self):
        plain = SimpleNamespace(sent_payloads=4, received_payloads=3,
                                dropped_corrupt=1, dropped_misaddressed=0)
        registry = MetricsRegistry()
        collect_transport(plain, registry)
        counters = registry.snapshot()["counters"]
        assert counters["transport.sent_payloads"] == 4
        assert counters["transport.dropped_corrupt"] == 1

        lossy = SimpleNamespace(
            sent_payloads=4, received_payloads=3, dropped_corrupt=0,
            dropped_misaddressed=0,
            channel_stats=lambda: {"to_device": {"sent": 4, "dropped": 1}})
        registry = MetricsRegistry()
        collect_transport(lossy, registry)
        counters = registry.snapshot()["counters"]
        assert counters["channel.dropped{direction=to_device}"] == 1

    def test_zero_transport_series_declares_schema(self):
        registry = MetricsRegistry()
        zero_transport_series(registry)
        counters = registry.snapshot()["counters"]
        assert counters == {
            "transport.sent_payloads": 0,
            "transport.received_payloads": 0,
            "transport.dropped_corrupt": 0,
            "transport.dropped_misaddressed": 0,
        }


class TestPointSnapshot:
    def test_occupancy_gauges_derived_and_bounded(self):
        after = {
            "counters": {
                "pipeline.cycles": 100,
                "pipeline.instructions": 60,
                "pipeline.fetch_stall_cycles": 10,
                "pipeline.mem_stall_cycles": 20,
                "pipeline.annulled_slots": 2,
            },
            "gauges": {}, "histograms": {},
        }
        empty = {"counters": {}, "gauges": {}, "histograms": {}}
        snap = point_snapshot(after, empty)
        gauges = snap["gauges"]
        for stage in PIPELINE_STAGES:
            value = gauges[f"pipeline.occupancy{{stage={stage}}}"]
            assert 0 <= value <= 1
        assert gauges["pipeline.occupancy{stage=DE}"] == 0.6
        assert gauges["pipeline.occupancy{stage=FE}"] == 0.72  # 60+2+10
        assert gauges["pipeline.occupancy{stage=ME}"] == 0.8   # 60+20
        # EX absorbs the remaining issue cycles: 100-60-10-20-2 = 8.
        assert gauges["pipeline.occupancy{stage=EX}"] == 0.68

    def test_zero_cycle_window_has_no_occupancy(self):
        empty = {"counters": {}, "gauges": {}, "histograms": {}}
        snap = point_snapshot(empty, empty)
        assert snap["gauges"] == {}


class TestSimulatorIntegration:
    def test_program_window_snapshot_properties(self):
        image = compile_c_program(PROGRAM)
        sim = Simulator(capture_memory_trace=False)
        report = sim.run(image)
        counters = report.obs["counters"]
        # The window covers exactly the measured execution.
        assert counters["pipeline.cycles"] == report.cycles
        assert counters["pipeline.instructions"] == report.instructions
        # Window series exclude the boot-time misses the cumulative
        # SimReport stats include.
        assert 0 < counters["cache.read_misses{cache=icache}"] \
            <= report.icache["read_misses"]
        # Dispatch/done events bracket the program on the cycle line.
        dispatch = sim.events.events("dispatch")[0]
        done = sim.events.events("done")[0]
        assert done.cycle - dispatch.cycle == report.cycles

    def test_snapshot_is_run_to_run_deterministic(self):
        import json

        image = compile_c_program(PROGRAM)
        first = Simulator(capture_memory_trace=False).run(image)
        second = Simulator(capture_memory_trace=False).run(image)
        dump = lambda obs: json.dumps(obs, sort_keys=True)  # noqa: E731
        assert dump(first.obs) == dump(second.obs)

    def test_simulator_snapshot_covers_every_layer(self):
        sim = Simulator(capture_memory_trace=False)
        snap = simulator_snapshot(sim)
        prefixes = {key.split(".")[0] for key in snap["counters"]}
        assert {"pipeline", "cache", "bus", "mem", "transport"} <= prefixes
