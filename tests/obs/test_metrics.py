"""MetricsRegistry unit tests: instruments, identity, snapshots, diffs,
and the disabled fast path."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    POW2_BOUNDS,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    series_key,
)


class TestSeriesKey:
    def test_bare_name(self):
        assert series_key("pipeline.cycles") == "pipeline.cycles"

    def test_labels_sorted_by_key(self):
        assert series_key("cache.read_hits", {"cache": "dcache"}) \
            == "cache.read_hits{cache=dcache}"
        assert series_key("x", {"b": 1, "a": 2}) == "x{a=2,b=1}"


class TestInstruments:
    def test_counter_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        counter = registry.counter("events", cache="dcache")
        counter.inc()
        counter.inc(4)
        assert registry.counter("events", cache="dcache") is counter
        assert counter.value == 5
        # A different label set is a different series.
        assert registry.counter("events", cache="icache") is not counter

    def test_gauge_set(self):
        registry = MetricsRegistry()
        registry.gauge("occupancy", stage="EX").set(0.75)
        assert registry.snapshot()["gauges"]["occupancy{stage=EX}"] == 0.75

    def test_histogram_upper_inclusive_bounds(self):
        hist = Histogram(bounds=(0, 1, 3))
        for value in (0, 1, 2, 3, 4, 100):
            hist.observe(value)
        # buckets: <=0, <=1, <=3, +inf
        assert hist.counts == [1, 1, 2, 2]
        assert hist.count == 6
        assert hist.sum == 110

    def test_histogram_load_merges_native_buckets(self):
        hist = Histogram()
        native = [0] * 16
        native[3] = 5
        hist.load(native, total_sum=30)
        hist.load(native, total_sum=30)
        assert hist.counts[3] == 10
        assert hist.count == 10
        assert hist.sum == 60

    def test_histogram_load_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            Histogram().load([0] * 3, 0)

    @given(value=st.integers(0, 1 << 20))
    def test_pow2_bounds_match_bit_length_bucketing(self, value):
        """The cache controller's native ``bit_length`` bucketing must
        land every value in the same bucket :meth:`Histogram.observe`
        would pick — the two paths feed the same series."""
        hist = Histogram()
        hist.observe(value)
        native = value.bit_length()
        native = native if native < 15 else 15
        assert hist.counts[native] == 1


class TestDisabledFastPath:
    def test_disabled_registry_hands_out_shared_nulls(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a") is NULL_COUNTER
        assert registry.gauge("b") is NULL_GAUGE
        assert registry.histogram("c") is NULL_HISTOGRAM

    def test_null_instruments_do_nothing(self):
        NULL_COUNTER.inc(100)
        NULL_GAUGE.set(3.5)
        NULL_HISTOGRAM.observe(9)
        NULL_HISTOGRAM.load([1] * 16, 7)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0.0
        assert NULL_HISTOGRAM.count == 0

    def test_disabled_registry_stays_empty(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("a").inc()
        assert len(registry) == 0
        assert registry.snapshot() == {"counters": {}, "gauges": {},
                                       "histograms": {}}

    def test_null_registry_is_disabled(self):
        assert not NULL_REGISTRY.enabled
        assert len(NULL_REGISTRY) == 0


class TestSnapshots:
    def test_snapshot_is_sorted_and_json_stable(self):
        registry = MetricsRegistry()
        registry.counter("z").inc(1)
        registry.counter("a").inc(2)
        registry.histogram("h").observe(5)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        assert registry.snapshot_json() == registry.snapshot_json()
        json.loads(registry.snapshot_json())  # valid JSON

    def test_insertion_order_does_not_change_bytes(self):
        first = MetricsRegistry()
        first.counter("a").inc(1)
        first.counter("b").inc(2)
        second = MetricsRegistry()
        second.counter("b").inc(2)
        second.counter("a").inc(1)
        assert first.snapshot_json() == second.snapshot_json()

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(1)
        registry.histogram("c").observe(1)
        assert len(registry) == 3
        registry.reset()
        assert len(registry) == 0


class TestDiff:
    def test_counters_subtract_and_zero_series_survive(self):
        before = MetricsRegistry()
        before.counter("hits").inc(10)
        before.counter("steady").inc(5)
        after = MetricsRegistry()
        after.counter("hits").inc(25)
        after.counter("steady").inc(5)
        delta = diff_snapshots(after.snapshot(), before.snapshot())
        assert delta["counters"] == {"hits": 15, "steady": 0}

    def test_gauges_taken_from_after(self):
        before = MetricsRegistry()
        before.gauge("level").set(0.9)
        after = MetricsRegistry()
        after.gauge("level").set(0.2)
        delta = diff_snapshots(after.snapshot(), before.snapshot())
        assert delta["gauges"] == {"level": 0.2}

    def test_histograms_subtract_per_bucket(self):
        before = MetricsRegistry()
        before.histogram("lat").observe(3)
        after = MetricsRegistry()
        after.histogram("lat").observe(3)
        after.histogram("lat").observe(3)
        after.histogram("lat").observe(100)
        delta = diff_snapshots(after.snapshot(), before.snapshot())
        hist = delta["histograms"]["lat"]
        assert hist["count"] == 2
        assert hist["sum"] == 103
        assert sum(hist["counts"]) == 2

    def test_new_series_in_after_kept_verbatim(self):
        after = MetricsRegistry()
        after.counter("fresh").inc(4)
        after.histogram("h").observe(1)
        delta = diff_snapshots(after.snapshot(),
                               {"counters": {}, "gauges": {},
                                "histograms": {}})
        assert delta["counters"]["fresh"] == 4
        assert delta["histograms"]["h"]["count"] == 1

    def test_diff_of_identical_snapshots_is_all_zero(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(7)
        registry.histogram("h").observe(2)
        snap = registry.snapshot()
        delta = diff_snapshots(snap, snap)
        assert delta["counters"] == {"a": 0}
        assert delta["histograms"]["h"]["count"] == 0


class TestBounds:
    def test_pow2_bounds_shape(self):
        assert len(POW2_BOUNDS) == 15
        assert POW2_BOUNDS[0] == 0
        assert POW2_BOUNDS[-1] == (1 << 14) - 1
