"""Prefetch-unit tests (§1's 'alternative memory structure')."""

import pytest

from repro.cache import CacheController, CacheGeometry
from repro.cache.prefetch import (
    PREFETCH_POLICIES,
    NextLinePrefetcher,
    StridePrefetcher,
    make_prefetcher,
)
from repro.mem.interface import FlatMemory

BASE = 0x4000_0000


def make(prefetch="none", size=1024, line=32):
    memory = FlatMemory(size=1 << 16, base=BASE)
    controller = CacheController(CacheGeometry(size, line), memory,
                                 prefetch=prefetch)
    return controller, memory


class TestPredictors:
    def test_nextline_prediction(self):
        unit = NextLinePrefetcher(32)
        assert unit.predict(BASE + 0x47) == BASE + 0x60  # next line base

    def test_stride_needs_two_confirmations(self):
        unit = StridePrefetcher(32)
        assert unit.predict(1000) is None          # first miss: no info
        assert unit.predict(1128) is None          # stride observed once
        assert unit.predict(1256) == 1384          # confirmed: predict

    def test_stride_disarms_on_irregularity(self):
        unit = StridePrefetcher(32)
        unit.predict(0)
        unit.predict(128)
        assert unit.predict(256) == 384
        assert unit.predict(999) is None           # pattern broken
        assert unit.predict(1127) is None          # retraining
        assert unit.predict(1255) == 1383          # re-armed

    def test_negative_stride_supported(self):
        unit = StridePrefetcher(32)
        unit.predict(4096)
        unit.predict(3968)
        assert unit.predict(3840) == 3712

    def test_factory(self):
        assert make_prefetcher("none", 32) is None
        assert isinstance(make_prefetcher("nextline", 32), NextLinePrefetcher)
        assert isinstance(make_prefetcher("stride", 32), StridePrefetcher)
        with pytest.raises(ValueError):
            make_prefetcher("oracle", 32)
        assert set(PREFETCH_POLICIES) == {"none", "nextline", "stride"}


class TestControllerIntegration:
    def test_nextline_turns_sequential_misses_into_hits(self):
        controller, _ = make("nextline")
        # Sequential walk, one access per line.
        stall_with = 0
        for index in range(16):
            _, cycles = controller.read(BASE + index * 32, 4)
            stall_with += cycles

        baseline, _ = make("none")
        stall_without = 0
        for index in range(16):
            _, cycles = baseline.read(BASE + index * 32, 4)
            stall_without += cycles

        assert stall_with < stall_without
        stats = controller.prefetcher.stats
        assert stats.useful > 10
        assert stats.accuracy > 0.9

    def test_stride_prefetcher_covers_large_strides(self):
        """The Figure 7 pattern (128 B stride) defeats next-line but not
        the stride unit."""
        def stalls(policy):
            controller, _ = make(policy, size=8192)
            total = 0
            for index in range(0, 4096, 128):
                _, cycles = controller.read(BASE + index, 4)
                total += cycles
            return total, controller

        none_total, _ = stalls("none")
        nextline_total, nextline = stalls("nextline")
        stride_total, stride = stalls("stride")
        assert stride_total < none_total / 2
        # Next-line fetches useless lines here.
        assert stride.prefetcher.stats.useful > \
            nextline.prefetcher.stats.useful

    def test_wrong_prefetches_pollute_but_stay_correct(self):
        controller, memory = make("nextline", size=1024)
        for index in range(64):
            memory.write_word(BASE + index * 32, index)
        # Random-ish pattern: prefetches will often be wrong.
        import random
        rng = random.Random(5)
        for _ in range(100):
            address = BASE + rng.randrange(64) * 32
            value, _ = controller.read(address, 4)
            assert value == (address - BASE) // 32  # data always correct

    def test_prefetch_at_device_edge_is_safe(self):
        controller, memory = make("nextline")
        # Miss on the very last line: prefetch would fall off the device.
        last_line = BASE + (1 << 16) - 32
        value, _ = controller.read(last_line, 4)
        assert value == 0  # no exception, no fill

    def test_background_cycles_accounted_separately(self):
        controller, _ = make("nextline")
        demand_stalls = 0
        for index in range(8):
            _, cycles = controller.read(BASE + index * 32, 4)
            demand_stalls += cycles
        stats = controller.prefetcher.stats
        assert stats.background_cycles > 0
        # Background traffic is not billed to the CPU beyond issue costs.
        assert demand_stalls < stats.background_cycles + demand_stalls

    def test_flush_clears_speculative_tracking(self):
        controller, _ = make("nextline")
        controller.read(BASE, 4)
        assert controller._speculative
        controller.flush()
        assert not controller._speculative

    def test_stats_dict_reports_prefetch(self):
        controller, _ = make("stride")
        for index in range(0, 1024, 128):
            controller.read(BASE + index, 4)
        stats = controller.stats_dict()
        assert stats["prefetch"]["policy"] == "stride"
        assert stats["prefetch"]["issued"] > 0


class TestConfigurationPlumbing:
    def test_config_key_and_synthesis(self):
        from repro.core import ArchitectureConfig, SynthesisModel

        config = ArchitectureConfig().with_prefetch("stride")
        assert "pfstride" in config.key()
        model = SynthesisModel()
        base = model.estimate(ArchitectureConfig())
        with_unit = model.estimate(config)
        assert with_unit.slices == base.slices + 260
        assert with_unit.frequency_mhz < base.frequency_mhz

    def test_invalid_policy_rejected(self):
        from repro.core import ArchitectureConfig

        with pytest.raises(ValueError):
            ArchitectureConfig(prefetch="psychic")

    def test_space_dimension(self):
        from repro.core import ConfigurationSpace

        space = ConfigurationSpace().add_dimension(
            "prefetch", ["none", "nextline", "stride"])
        assert [p.prefetch for p in space] == ["none", "nextline", "stride"]

    def test_platform_wires_prefetcher(self):
        from repro.core import ArchitectureConfig
        from repro.fpx import FPXPlatform

        platform = FPXPlatform(
            ArchitectureConfig().with_prefetch("stride").platform_config())
        assert platform.dcache.prefetcher is not None
        assert platform.dcache.prefetcher.name == "stride"

    def test_figure7_kernel_speedup_with_stride_unit(self):
        """The trace analyzer's prefetch recommendation, validated: the
        Figure 7 kernel on a too-small cache runs faster with the stride
        unit than without."""
        from repro.core import ArchitectureConfig, LiquidProcessorSystem

        kernel = """
unsigned count[1024];
int main(void) {
    unsigned i;
    volatile unsigned x;
    for (i = 0; i < 20000; i = i + 32) {
        x = count[i % 1024];
    }
    return 0;
}
"""
        small = ArchitectureConfig().with_dcache_size(1024)
        plain = LiquidProcessorSystem(small).run_c(kernel)
        prefetching = LiquidProcessorSystem(
            small.with_prefetch("stride")).run_c(kernel)
        assert prefetching.cycles < plain.cycles
