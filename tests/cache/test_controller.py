"""CacheController tests: timing, write-through policy, bypass, flush."""

import pytest

from repro.cache import CacheController, CacheGeometry
from repro.mem.interface import FlatMemory

BASE = 0x4000_0000


def make_controller(size=1024, line=32, read_wait=0, cacheable=None,
                    **kwargs):
    memory = FlatMemory(size=1 << 16, base=BASE, read_wait=read_wait)
    controller = CacheController(CacheGeometry(size, line), memory,
                                 cacheable or (lambda a: True), **kwargs)
    return controller, memory


class TestReadPath:
    def test_miss_fills_line_and_costs_cycles(self):
        controller, memory = make_controller()
        memory.write_word(BASE + 0x100, 0xCAFEBABE)
        value, cycles = controller.read(BASE + 0x100, 4)
        assert value == 0xCAFEBABE
        assert cycles > 0
        assert controller.fill_count == 1

    def test_hit_is_free(self):
        controller, memory = make_controller()
        memory.write_word(BASE + 0x100, 7)
        controller.read(BASE + 0x100, 4)
        value, cycles = controller.read(BASE + 0x100, 4)
        assert value == 7
        assert cycles == 0

    def test_whole_line_resident_after_miss(self):
        controller, memory = make_controller(line=32)
        for offset in range(0, 32, 4):
            memory.write_word(BASE + 0x200 + offset, offset)
        controller.read(BASE + 0x200, 4)
        for offset in range(4, 32, 4):
            value, cycles = controller.read(BASE + 0x200 + offset, 4)
            assert value == offset
            assert cycles == 0

    def test_refill_read_not_double_counted_in_stats(self):
        controller, memory = make_controller()
        controller.read(BASE, 4)
        stats = controller.cache.stats
        assert stats.read_misses == 1
        assert stats.read_hits == 0

    def test_falls_back_to_per_word_fill_without_read_burst(self):
        class NoBurstMemory(FlatMemory):
            read_burst = None

        memory = NoBurstMemory(size=1 << 16, base=BASE)
        # read_burst attribute is None -> controller must loop reads
        controller = CacheController(CacheGeometry(1024, 32), memory)
        memory.write_word(BASE + 64, 99)
        value, cycles = controller.read(BASE + 64, 4)
        assert value == 99
        assert cycles >= 8  # at least one cycle per word in the line


class TestWritePath:
    def test_write_through_always_reaches_memory(self):
        controller, memory = make_controller()
        controller.write(BASE + 0x40, 4, 0x1234)
        assert memory.read_word(BASE + 0x40) == 0x1234

    def test_write_hit_keeps_cache_coherent(self):
        controller, memory = make_controller()
        memory.write_word(BASE + 0x40, 1)
        controller.read(BASE + 0x40, 4)         # make it resident
        controller.write(BASE + 0x40, 4, 2)
        value, cycles = controller.read(BASE + 0x40, 4)
        assert value == 2
        assert cycles == 0                       # still a hit
        assert memory.read_word(BASE + 0x40) == 2

    def test_write_miss_does_not_allocate(self):
        controller, memory = make_controller()
        controller.write(BASE + 0x80, 4, 5)
        assert controller.cache.stats.write_misses == 1
        _, cycles = controller.read(BASE + 0x80, 4)
        assert cycles > 0  # read still misses: no write-allocate

    def test_byte_write_merges_into_line(self):
        controller, memory = make_controller()
        memory.write_word(BASE, 0x11223344)
        controller.read(BASE, 4)
        controller.write(BASE + 1, 1, 0xFF)
        value, _ = controller.read(BASE, 4)
        assert value == 0x11FF3344


class TestBypassAndFlush:
    def test_uncacheable_addresses_bypass(self):
        controller, memory = make_controller(
            cacheable=lambda address: address < BASE + 0x1000)
        memory.write_word(BASE + 0x2000, 42)
        value, _ = controller.read(BASE + 0x2000, 4)
        assert value == 42
        assert controller.bypass_count == 1
        assert controller.cache.stats.reads == 0

    def test_uncacheable_sees_external_updates(self):
        """The mailbox property: an uncached location always reads fresh."""
        controller, memory = make_controller(
            cacheable=lambda address: address != BASE)
        memory.write_word(BASE, 0)
        assert controller.read(BASE, 4)[0] == 0
        memory.write_word(BASE, 0x4000_2000)  # external (host) write
        assert controller.read(BASE, 4)[0] == 0x4000_2000

    def test_disabled_cache_forwards_everything(self):
        controller, memory = make_controller(enabled=False)
        memory.write_word(BASE, 9)
        assert controller.read(BASE, 4)[0] == 9
        assert controller.cache.valid_lines == 0

    def test_flush_invalidates_and_costs_cycles(self):
        controller, memory = make_controller()
        memory.write_word(BASE, 3)
        controller.read(BASE, 4)
        cycles = controller.flush()
        assert cycles == controller.flush_cycles > 0
        memory.write_word(BASE, 4)  # stale data must not be served
        assert controller.read(BASE, 4)[0] == 4

    def test_flush_cycles_scale_with_lines(self):
        small, _ = make_controller(size=1024)
        large, _ = make_controller(size=16384)
        assert large.flush_cycles > small.flush_cycles

    def test_stats_dict_shape(self):
        controller, _ = make_controller()
        controller.read(BASE, 4)
        stats = controller.stats_dict()
        assert stats["fills"] == 1
        assert stats["geometry"]["size"] == 1024


class TestPaperScenario:
    """The Figure 7/8 access pattern at data-structure level."""

    def _sweep_misses(self, cache_size: int) -> int:
        controller, memory = make_controller(size=cache_size, line=32)
        # 4 KB array, stride 128 bytes (count[i % 1024], i += 32), 3 passes
        for _ in range(3):
            for index in range(0, 1024, 32):
                controller.read(BASE + index * 4, 4)
        return controller.cache.stats.read_misses

    def test_small_cache_thrashes(self):
        # 1 KB direct-mapped, 4 KB working set: every access conflicts.
        assert self._sweep_misses(1024) == 3 * 32

    def test_2kb_still_thrashes(self):
        assert self._sweep_misses(2048) == 3 * 32

    def test_4kb_only_cold_misses(self):
        # "no cache misses (excluding the initial loading of the cache)
        # once the cache size reaches 4KB"
        assert self._sweep_misses(4096) == 32

    def test_16kb_same_as_4kb(self):
        assert self._sweep_misses(16384) == 32
