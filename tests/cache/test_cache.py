"""Set-associative cache data-structure tests."""

import pytest

from repro.cache import CacheGeometry, SetAssociativeCache


class TestGeometry:
    def test_default_splits(self):
        geometry = CacheGeometry(size=4096, line_size=32, ways=1)
        assert geometry.sets == 128
        assert geometry.offset_bits == 5
        assert geometry.index_bits == 7

    def test_split_roundtrip(self):
        geometry = CacheGeometry(size=1024, line_size=32)
        address = 0x4000_1234
        tag, index, offset = geometry.split(address)
        rebuilt = (tag << (geometry.offset_bits + geometry.index_bits)) \
            | (index << geometry.offset_bits) | offset
        assert rebuilt == address

    def test_line_base(self):
        geometry = CacheGeometry(size=1024, line_size=32)
        assert geometry.line_base(0x1234_5678) == 0x1234_5660

    @pytest.mark.parametrize("size,line,ways", [
        (1024, 32, 1), (2048, 32, 1), (4096, 32, 1),
        (8192, 32, 1), (16384, 32, 1),   # the paper's sweep
        (4096, 16, 2), (8192, 64, 4),
    ])
    def test_valid_geometries(self, size, line, ways):
        CacheGeometry(size=size, line_size=line, ways=ways)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(size=3000)
        with pytest.raises(ValueError):
            CacheGeometry(line_size=24)
        with pytest.raises(ValueError):
            CacheGeometry(ways=3)

    def test_unknown_replacement_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(replacement="fifo")

    def test_fully_associative_corner(self):
        geometry = CacheGeometry(size=1024, line_size=32, ways=32)
        assert geometry.sets == 1


class TestLookupAndFill:
    def _filled(self, geometry=None):
        cache = SetAssociativeCache(geometry or CacheGeometry(1024, 32))
        line = bytes(range(32))
        cache.fill(0x4000_0000, line)
        return cache, line

    def test_miss_then_hit(self):
        cache, _ = self._filled()
        assert cache.read(0x5000_0000, 4) is None
        assert cache.stats.read_misses == 1
        assert cache.read(0x4000_0000, 4) is not None
        assert cache.stats.read_hits == 1

    def test_read_returns_filled_bytes(self):
        cache, line = self._filled()
        assert cache.read(0x4000_0004, 4) == int.from_bytes(line[4:8], "big")
        assert cache.read(0x4000_001F, 1) == line[31]

    def test_write_hit_updates_line(self):
        cache, _ = self._filled()
        assert cache.write(0x4000_0008, 4, 0xAABBCCDD)
        assert cache.read(0x4000_0008, 4) == 0xAABBCCDD

    def test_write_miss_does_not_allocate(self):
        cache, _ = self._filled()
        assert not cache.write(0x6000_0000, 4, 1)
        assert cache.read(0x6000_0000, 4) is None  # still not resident
        assert cache.stats.write_misses == 1

    def test_direct_mapped_conflict_evicts(self):
        cache = SetAssociativeCache(CacheGeometry(1024, 32, ways=1))
        cache.fill(0x4000_0000, bytes(32))
        evicted = cache.fill(0x4000_0400, bytes(32))  # same set, 1KB apart
        assert evicted == 0x4000_0000
        assert cache.read(0x4000_0000, 4) is None

    def test_two_way_holds_both_conflicting_lines(self):
        cache = SetAssociativeCache(CacheGeometry(1024, 32, ways=2))
        cache.fill(0x4000_0000, bytes(32))
        evicted = cache.fill(0x4000_0200, bytes(32))  # same set index
        assert evicted is None
        assert cache.read(0x4000_0000, 4) is not None
        assert cache.read(0x4000_0200, 4) is not None

    def test_lru_evicts_least_recently_used(self):
        cache = SetAssociativeCache(
            CacheGeometry(1024, 32, ways=2, replacement="lru"))
        set_stride = 512  # ways * sets * line...: same-index addresses
        a, b, c = 0x4000_0000, 0x4000_0000 + 512, 0x4000_0000 + 1024
        cache.fill(a, bytes(32))
        cache.fill(b, bytes(32))
        cache.read(a, 4)            # touch a: b becomes LRU
        evicted = cache.fill(c, bytes(32))
        assert evicted == b

    def test_lrr_evicts_oldest_fill_regardless_of_use(self):
        cache = SetAssociativeCache(
            CacheGeometry(1024, 32, ways=2, replacement="lrr"))
        a, b, c = 0x4000_0000, 0x4000_0000 + 512, 0x4000_0000 + 1024
        cache.fill(a, bytes(32))
        cache.fill(b, bytes(32))
        cache.read(a, 4)            # LRR ignores touches
        evicted = cache.fill(c, bytes(32))
        assert evicted == a

    def test_random_replacement_is_deterministic_per_seed(self):
        def evictions(seed):
            cache = SetAssociativeCache(
                CacheGeometry(1024, 32, ways=4, replacement="random"),
                seed=seed)
            out = []
            for step in range(16):
                out.append(cache.fill(0x4000_0000 + step * 256, bytes(32)))
            return out

        assert evictions(1) == evictions(1)

    def test_fill_wrong_size_rejected(self):
        cache = SetAssociativeCache(CacheGeometry(1024, 32))
        with pytest.raises(ValueError):
            cache.fill(0x4000_0000, bytes(16))

    def test_invalidate_all(self):
        cache, _ = self._filled()
        cache.invalidate_all()
        assert cache.valid_lines == 0
        assert cache.read(0x4000_0000, 4) is None

    def test_invalidate_single_line(self):
        cache, _ = self._filled()
        cache.fill(0x4000_0020, bytes(32))
        cache.invalidate_line(0x4000_0000)
        assert cache.read(0x4000_0000, 4) is None
        assert cache.read(0x4000_0020, 4) is not None

    def test_stats_miss_rate(self):
        cache, _ = self._filled()
        cache.read(0x4000_0000, 4)
        cache.read(0x7000_0000, 4)
        assert cache.stats.read_miss_rate == 0.5

    def test_contents_summary(self):
        cache, _ = self._filled()
        summary = cache.contents_summary()
        assert sum(len(tags) for tags in summary.values()) == 1
