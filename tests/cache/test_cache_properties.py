"""Property-based cache tests against a naive reference model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheGeometry, SetAssociativeCache


class ReferenceLruCache:
    """Obviously-correct LRU set-associative model (dict of lists)."""

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        self.sets: dict[int, list[int]] = {}

    def access(self, address: int) -> bool:
        """Reference a line; True on hit.  Misses always fill."""
        line = address // self.geometry.line_size
        index = line % self.geometry.sets
        resident = self.sets.setdefault(index, [])
        if line in resident:
            resident.remove(line)
            resident.append(line)
            return True
        resident.append(line)
        if len(resident) > self.geometry.ways:
            resident.pop(0)
        return False


geometries = st.builds(
    CacheGeometry,
    size=st.sampled_from([512, 1024, 4096]),
    line_size=st.sampled_from([16, 32]),
    ways=st.sampled_from([1, 2, 4]),
    replacement=st.just("lru"),
)

address_lists = st.lists(
    st.integers(min_value=0, max_value=0x3FFF).map(lambda x: x * 4),
    min_size=1, max_size=300,
)


class TestAgainstReference:
    @given(geometry=geometries, addresses=address_lists)
    @settings(max_examples=60, deadline=None)
    def test_hit_miss_sequence_matches_reference(self, geometry, addresses):
        cache = SetAssociativeCache(geometry)
        reference = ReferenceLruCache(geometry)
        for address in addresses:
            got_hit = cache.read(address, 4) is not None
            if not got_hit:
                cache.fill(geometry.line_base(address),
                           bytes(geometry.line_size))
            expected_hit = reference.access(address)
            assert got_hit == expected_hit, f"address 0x{address:x}"

    @given(geometry=geometries, addresses=address_lists)
    @settings(max_examples=30, deadline=None)
    def test_resident_lines_never_exceed_capacity(self, geometry, addresses):
        cache = SetAssociativeCache(geometry)
        for address in addresses:
            if cache.read(address, 4) is None:
                cache.fill(geometry.line_base(address),
                           bytes(geometry.line_size))
        assert cache.valid_lines <= geometry.sets * geometry.ways
        for index, tags in cache.contents_summary().items():
            assert len(tags) <= geometry.ways
            assert len(set(tags)) == len(tags)  # no duplicate tags in a set

    @given(addresses=address_lists)
    @settings(max_examples=30, deadline=None)
    def test_data_integrity_under_fills(self, addresses):
        """Whatever is resident always reads back what was filled."""
        geometry = CacheGeometry(1024, 32)
        cache = SetAssociativeCache(geometry)
        expected: dict[int, bytes] = {}
        for address in addresses:
            base = geometry.line_base(address)
            payload = base.to_bytes(4, "big") * 8
            cache.fill(base, payload)
            expected[base] = payload
        for base, payload in expected.items():
            value = cache.read(base, 4)
            if value is not None:  # may have been evicted
                assert value == int.from_bytes(payload[:4], "big")

    @given(addresses=address_lists, size_a=st.sampled_from([512, 1024]),
           factor=st.sampled_from([2, 4]))
    @settings(max_examples=30, deadline=None)
    def test_larger_cache_never_misses_more_lru_full_assoc(
            self, addresses, size_a, factor):
        """LRU inclusion property holds for fully-associative caches."""

        def misses(size: int) -> int:
            geometry = CacheGeometry(size, 32, ways=size // 32)
            reference = ReferenceLruCache(geometry)
            return sum(not reference.access(address)
                       for address in addresses)

        assert misses(size_a * factor) <= misses(size_a)
