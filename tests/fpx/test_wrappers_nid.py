"""Layered protocol wrappers + NID switch tests."""

import pytest

from repro.fpx.nid import PORTS, FourPortSwitch, VirtualCircuit
from repro.fpx.wrappers import LayeredProtocolWrappers
from repro.net.packets import build_udp_packet, parse_ip

DEVICE_IP = "128.252.153.2"
OTHER_IP = "128.252.153.3"
CLIENT_IP = "10.0.0.1"


def frame_to(dst_ip: str, dst_port: int = 2000, payload: bytes = b"cmd"):
    return build_udp_packet(parse_ip(CLIENT_IP), parse_ip(dst_ip),
                            40000, dst_port, payload)


class TestWrappers:
    def test_unwrap_for_our_address(self):
        wrappers = LayeredProtocolWrappers.for_address(DEVICE_IP)
        unwrapped = wrappers.unwrap(frame_to(DEVICE_IP, 2000, b"hello"))
        assert unwrapped is not None
        assert unwrapped.payload == b"hello"
        assert unwrapped.dst_port == 2000
        assert unwrapped.src_port == 40000

    def test_foreign_destination_dropped(self):
        wrappers = LayeredProtocolWrappers.for_address(DEVICE_IP)
        assert wrappers.unwrap(frame_to(OTHER_IP)) is None
        assert wrappers.stats.not_for_us == 1

    def test_accept_any_ip_mode(self):
        wrappers = LayeredProtocolWrappers.for_address(DEVICE_IP)
        wrappers.accept_any_ip = True
        assert wrappers.unwrap(frame_to(OTHER_IP)) is not None

    def test_malformed_ip_counted(self):
        wrappers = LayeredProtocolWrappers.for_address(DEVICE_IP)
        assert wrappers.unwrap(b"\x45\x00garbage") is None
        assert wrappers.stats.bad_ip == 1

    def test_corrupt_udp_counted(self):
        wrappers = LayeredProtocolWrappers.for_address(DEVICE_IP)
        frame = bytearray(frame_to(DEVICE_IP))
        frame[-1] ^= 0xFF  # corrupt UDP payload
        assert wrappers.unwrap(bytes(frame)) is None
        assert wrappers.stats.bad_udp == 1

    def test_non_udp_counted(self):
        from repro.net.packets import Ipv4Packet
        wrappers = LayeredProtocolWrappers.for_address(DEVICE_IP)
        frame = Ipv4Packet(src_ip=1, dst_ip=parse_ip(DEVICE_IP),
                           payload=b"", protocol=6).encode()
        assert wrappers.unwrap(frame) is None
        assert wrappers.stats.non_udp == 1

    def test_wrap_produces_parseable_frame(self):
        wrappers = LayeredProtocolWrappers.for_address(DEVICE_IP)
        frame = wrappers.wrap(b"response", parse_ip(CLIENT_IP), 40000, 2000)
        unwrapped = LayeredProtocolWrappers.for_address(CLIENT_IP).unwrap(frame)
        assert unwrapped.payload == b"response"
        assert unwrapped.src_port == 2000

    def test_wrap_unwrap_stats(self):
        wrappers = LayeredProtocolWrappers.for_address(DEVICE_IP)
        wrappers.wrap(b"x", 1, 2, 3)
        wrappers.unwrap(frame_to(DEVICE_IP))
        assert wrappers.stats.frames_out == 1
        assert wrappers.stats.frames_in == 1


class TestNid:
    def test_default_route_to_rad(self):
        switch = FourPortSwitch()
        received = []
        switch.attach("rad", lambda port, frame: received.append(frame))
        switch.ingress("linecard0", b"frame")
        assert received == [b"frame"]

    def test_virtual_circuit_overrides_default(self):
        switch = FourPortSwitch()
        to_switch, to_rad = [], []
        switch.attach("switch", lambda p, f: to_switch.append(f))
        switch.attach("rad", lambda p, f: to_rad.append(f))
        switch.add_circuit(VirtualCircuit(
            "linecard0", "switch", match=lambda f: f.startswith(b"S"),
            name="to-fabric"))
        switch.ingress("linecard0", b"S-frame")
        switch.ingress("linecard0", b"R-frame")
        assert to_switch == [b"S-frame"]
        assert to_rad == [b"R-frame"]

    def test_unattached_egress_drops(self):
        switch = FourPortSwitch()
        switch.ingress("linecard0", b"frame")
        assert switch.stats.dropped == 1

    def test_hairpin_dropped(self):
        switch = FourPortSwitch()
        switch.attach("rad", lambda p, f: None)
        switch.add_circuit(VirtualCircuit("rad", "rad"))
        switch.ingress("rad", b"loop")
        assert switch.stats.dropped == 1

    def test_unknown_port_rejected(self):
        switch = FourPortSwitch()
        with pytest.raises(ValueError):
            switch.ingress("bogus", b"")
        with pytest.raises(ValueError):
            switch.attach("bogus", lambda p, f: None)

    def test_per_port_counters(self):
        switch = FourPortSwitch()
        switch.attach("rad", lambda p, f: None)
        switch.ingress("linecard0", b"a")
        switch.ingress("linecard1", b"b")
        assert switch.stats.per_port_in == {"linecard0": 1, "linecard1": 1}
        assert switch.stats.per_port_out == {"rad": 2}
        assert switch.stats.forwarded == 2

    def test_port_names_documented(self):
        assert set(PORTS) == {"linecard0", "linecard1", "switch", "rad"}
