"""FPXPlatform end-to-end tests driven by raw control frames."""

import pytest

from repro.fpx import FPXPlatform, PlatformConfig
from repro.cache import CacheGeometry
from repro.net import protocol
from repro.net.packets import build_udp_packet, parse_ip, parse_udp_packet
from repro.net.protocol import LeonState
from repro.toolchain import assemble, link
from repro.toolchain.linker import MemoryMapScript

CLIENT_IP = "10.1.2.3"
CLIENT_PORT = 45000


def command_frame(platform, payload: bytes) -> bytes:
    return build_udp_packet(parse_ip(CLIENT_IP),
                            parse_ip(platform.config.device_ip),
                            CLIENT_PORT, platform.config.control_port,
                            payload)


def responses(platform) -> list:
    out = []
    for frame in platform.take_tx_frames():
        _, udp = parse_udp_packet(frame)
        out.append(protocol.decode_response(udp.payload))
    return out


def simple_image():
    return link([assemble("""
    .global _start
_start:
    mov 33, %o0
    set 0x40000008, %g1
    st %o0, [%g1]
    ta 0
    nop
""")], MemoryMapScript.default(0x4000_1000))


class TestBootAndStatus:
    def test_boot_reaches_polling(self, platform):
        assert platform.leon_ctrl.state == LeonState.POLLING

    def test_status_command_round_trip(self, platform):
        platform.inject_frame(
            command_frame(platform, protocol.encode_status_request()))
        [response] = responses(platform)
        assert response.state == LeonState.POLLING

    def test_responses_addressed_to_requester(self, platform):
        platform.inject_frame(
            command_frame(platform, protocol.encode_status_request()))
        [frame] = platform.take_tx_frames()
        ip, udp = parse_udp_packet(frame)
        assert ip.dst_ip == parse_ip(CLIENT_IP)
        assert udp.dst_port == CLIENT_PORT
        assert udp.src_port == platform.config.control_port

    def test_frames_for_other_ips_ignored(self, platform):
        frame = build_udp_packet(parse_ip(CLIENT_IP), parse_ip("9.9.9.9"),
                                 CLIENT_PORT, platform.config.control_port,
                                 protocol.encode_status_request())
        platform.inject_frame(frame)
        assert platform.take_tx_frames() == []

    def test_malformed_command_answered_with_error(self, platform):
        platform.inject_frame(command_frame(platform, b"\xff\x00garbage"))
        [response] = responses(platform)
        assert isinstance(response, protocol.ErrorResponse)


class TestLoadExecuteRead:
    def test_full_flow_via_raw_frames(self, platform):
        image = simple_image()
        base, blob = image.flatten()
        for payload in protocol.packetize_program(base, blob, chunk=64):
            platform.inject_frame(command_frame(platform, payload))
        acks = responses(platform)
        assert all(isinstance(a, protocol.LoadAck) for a in acks)
        assert acks[-1].received == acks[-1].total

        platform.inject_frame(
            command_frame(platform, protocol.encode_start()))
        [started] = responses(platform)
        assert isinstance(started, protocol.Started)
        assert started.entry == base

        state = platform.run_program()
        assert state == LeonState.DONE
        # Completion emits an unsolicited DONE status packet.
        done_msgs = [r for r in responses(platform)
                     if isinstance(r, protocol.StatusResponse)]
        assert done_msgs and done_msgs[0].state == LeonState.DONE
        assert done_msgs[0].cycles > 0

        platform.inject_frame(command_frame(
            platform, protocol.encode_read_memory(0x4000_0008, 4)))
        [data] = responses(platform)
        assert isinstance(data, protocol.MemoryData)
        assert int.from_bytes(data.data, "big") == 33

    def test_restart_command(self, platform):
        platform.inject_frame(
            command_frame(platform, protocol.encode_restart()))
        [restarted] = responses(platform)
        assert isinstance(restarted, protocol.Restarted)
        assert platform.leon_ctrl.state == LeonState.RESET
        platform.boot()
        assert platform.leon_ctrl.state == LeonState.POLLING

    def test_program_error_emits_error_packet(self, platform):
        # An illegal instruction inside the program -> trap table ->
        # error_state -> leon_ctrl emits an error packet.
        image = link([assemble("""
    .global _start
_start:
    unimp 0
""")], MemoryMapScript.default(0x4000_1000))
        base, blob = image.flatten()
        for payload in protocol.packetize_program(base, blob):
            platform.inject_frame(command_frame(platform, payload))
        platform.inject_frame(command_frame(platform, protocol.encode_start()))
        responses(platform)  # drain acks/started
        state = platform.run_program(max_instructions=100_000)
        assert state == LeonState.ERROR
        errors = [r for r in responses(platform)
                  if isinstance(r, protocol.ErrorResponse)]
        assert errors


class TestConfigurability:
    def test_cache_geometry_applies(self):
        config = PlatformConfig(dcache=CacheGeometry(size=16384,
                                                     line_size=32))
        platform = FPXPlatform(config)
        assert platform.dcache.geometry.size == 16384

    def test_statistics_shape(self, platform):
        stats = platform.statistics()
        for key in ("cycles", "instructions", "state", "icache", "dcache",
                    "sdram", "adapter", "wrappers"):
            assert key in stats

    def test_sdram_reachable_from_program(self, platform):
        image = link([assemble("""
    .global _start
_start:
    set 0x60000000, %g1
    set 0xfeedface, %o0
    st %o0, [%g1]
    ld [%g1], %o1
    set 0x40000008, %g2
    st %o1, [%g2]
    ta 0
    nop
""")], MemoryMapScript.default(0x4000_1000))
        base, blob = image.flatten()
        for payload in protocol.packetize_program(base, blob):
            platform.inject_frame(command_frame(platform, payload))
        platform.inject_frame(command_frame(platform, protocol.encode_start()))
        platform.run_program()
        assert platform.sram.host_read_word(0x4000_0008) == 0xFEEDFACE
        assert platform.sdram.total_handshakes > 0

    def test_rad_records_programming(self, platform):
        assert platform.rad.reprogram_count == 1
        assert platform.rad.bitfile_name == "liquid_baseline.bit"
