"""leon_ctrl state machine and disconnect-circuitry tests (paper §3.1)."""

import pytest

from repro.fpx.leon_ctrl import (
    ERROR_TRAP_FELL_THROUGH,
    GatedSram,
    LeonController,
)
from repro.mem.sram import SramBank
from repro.net.protocol import LeonState, LoadChunk
from repro.peripherals import Clock, CycleCounter

SRAM_BASE = 0x4000_0000
POLL = 0x0000_1040
ERROR = 0x0000_1090
MAILBOX = SRAM_BASE


@pytest.fixture
def controller():
    sram = SramBank(SRAM_BASE, 0x10000)
    gate = GatedSram(sram)
    clock = Clock()
    counter = CycleCounter(clock)
    leon = LeonController(gate, counter, POLL, ERROR, MAILBOX)
    return leon, gate, sram, clock, counter


class TestGate:
    def test_connected_passes_through(self, controller):
        _, gate, sram, _, _ = controller
        sram.host_write_word(SRAM_BASE + 8, 0x1234)
        assert gate.read(SRAM_BASE + 8, 4)[0] == 0x1234
        gate.write(SRAM_BASE + 12, 4, 7)
        assert sram.host_read_word(SRAM_BASE + 12) == 7

    def test_disconnected_drives_zeros(self, controller):
        """Figure 6: 'always drive 0s on the LEON processor's data bus'."""
        _, gate, sram, _, _ = controller
        sram.host_write_word(SRAM_BASE + 8, 0x1234)
        gate.connected = False
        assert gate.read(SRAM_BASE + 8, 4)[0] == 0
        assert gate.blocked_reads == 1

    def test_disconnected_swallows_writes(self, controller):
        _, gate, sram, _, _ = controller
        gate.connected = False
        gate.write(SRAM_BASE + 8, 4, 0xBAD)
        assert sram.host_read_word(SRAM_BASE + 8) == 0
        assert gate.blocked_writes == 1

    def test_disconnected_burst_reads_zero(self, controller):
        _, gate, sram, _, _ = controller
        sram.host_write_word(SRAM_BASE, 5)
        gate.connected = False
        words, _ = gate.read_burst(SRAM_BASE, 4)
        assert words == [0, 0, 0, 0]

    def test_host_side_unaffected_by_gate(self, controller):
        """The user loads programs while LEON is disconnected."""
        _, gate, sram, _, _ = controller
        gate.connected = False
        sram.host_write(SRAM_BASE + 0x1000, b"\xde\xad")
        assert sram.host_read(SRAM_BASE + 0x1000, 2) == b"\xde\xad"


class TestStateMachine:
    def test_boot_to_polling_disconnects(self, controller):
        leon, gate, _, _, _ = controller
        assert leon.state == LeonState.RESET
        leon.snoop_fetch(POLL)
        assert leon.state == LeonState.POLLING
        assert not gate.connected

    def test_load_then_start_sequence(self, controller):
        leon, gate, sram, clock, counter = controller
        leon.snoop_fetch(POLL)
        received, total = leon.handle_load_chunk(
            LoadChunk(0, 1, SRAM_BASE + 0x1000, b"\x01\x02\x03\x04"))
        assert (received, total) == (1, 1)
        assert leon.state == LeonState.LOADING
        assert sram.host_read(SRAM_BASE + 0x1000, 4) == b"\x01\x02\x03\x04"
        entry = leon.start()
        assert entry == SRAM_BASE + 0x1000
        assert leon.state == LeonState.RUNNING
        assert gate.connected
        assert sram.host_read_word(MAILBOX) == entry
        assert counter.running

    def test_completion_freezes_counter_and_clears_mailbox(self, controller):
        leon, gate, sram, clock, counter = controller
        leon.snoop_fetch(POLL)
        leon.handle_load_chunk(LoadChunk(0, 1, SRAM_BASE + 0x1000, b"\x00" * 4))
        leon.start()
        leon.snoop_fetch(SRAM_BASE + 0x1000)   # LEON picks up the program
        clock.advance(500)
        done_cycles = []
        leon.on_done = done_cycles.append
        leon.snoop_fetch(POLL)  # program returned to the polling loop
        assert leon.state == LeonState.DONE
        assert done_cycles == [500]
        assert not gate.connected
        assert sram.host_read_word(MAILBOX) == 0
        assert not counter.running

    def test_program_fetches_do_not_complete(self, controller):
        leon, _, sram, _, _ = controller
        leon.snoop_fetch(POLL)
        leon.handle_load_chunk(LoadChunk(0, 1, SRAM_BASE + 0x1000, b"\x00" * 4))
        leon.start()
        leon.snoop_fetch(SRAM_BASE + 0x1000)
        leon.snoop_fetch(SRAM_BASE + 0x1004)
        assert leon.state == LeonState.RUNNING

    def test_poll_fetch_before_dispatch_is_not_completion(self, controller):
        """The CPU may re-fetch the polling-loop head between START and
        actually reading the mailbox; that must not count as done."""
        leon, _, _, _, _ = controller
        leon.snoop_fetch(POLL)
        leon.handle_load_chunk(LoadChunk(0, 1, SRAM_BASE + 0x1000, b"\x00" * 4))
        leon.start()
        leon.snoop_fetch(POLL)      # still spinning, mailbox unread
        leon.snoop_fetch(POLL)
        assert leon.state == LeonState.RUNNING
        leon.snoop_fetch(SRAM_BASE + 0x1000)  # dispatch observed
        leon.snoop_fetch(POLL)
        assert leon.state == LeonState.DONE

    def test_duplicate_start_while_running_is_harmless(self, controller):
        leon, _, _, _, counter = controller
        leon.snoop_fetch(POLL)
        leon.handle_load_chunk(LoadChunk(0, 1, SRAM_BASE + 0x1000, b"\x00" * 4))
        entry = leon.start()
        leon.snoop_fetch(SRAM_BASE + 0x1000)
        assert leon.start() == entry          # duplicate command
        assert leon.programs_run == 1
        leon.snoop_fetch(POLL)
        assert leon.state == LeonState.DONE

    def test_error_state_detected_and_reported(self, controller):
        leon, _, _, _, _ = controller
        errors = []
        leon.on_error = errors.append
        leon.snoop_fetch(ERROR)
        assert leon.state == LeonState.ERROR
        assert errors == [ERROR_TRAP_FELL_THROUGH]

    def test_start_without_program_fails(self, controller):
        leon, _, _, _, _ = controller
        leon.snoop_fetch(POLL)
        assert leon.start() is None

    def test_explicit_entry_address(self, controller):
        leon, _, _, _, _ = controller
        leon.snoop_fetch(POLL)
        leon.handle_load_chunk(LoadChunk(0, 1, SRAM_BASE + 0x2000, b"\x00" * 4))
        assert leon.start(SRAM_BASE + 0x2000) == SRAM_BASE + 0x2000

    def test_rerun_already_loaded_program(self, controller):
        """'or the user sends a command to re-execute a program already
        loaded in main memory'."""
        leon, _, _, clock, _ = controller
        leon.snoop_fetch(POLL)
        leon.handle_load_chunk(LoadChunk(0, 1, SRAM_BASE + 0x1000, b"\x00" * 4))
        leon.start()
        leon.snoop_fetch(SRAM_BASE + 0x1000)   # dispatched
        leon.snoop_fetch(POLL)  # done
        assert leon.state == LeonState.DONE
        assert leon.start() == SRAM_BASE + 0x1000
        assert leon.state == LeonState.RUNNING
        assert leon.programs_run == 2

    def test_multi_chunk_load_out_of_order(self, controller):
        leon, _, sram, _, _ = controller
        leon.snoop_fetch(POLL)
        leon.handle_load_chunk(LoadChunk(1, 2, SRAM_BASE + 0x1010, b"BBBB"))
        received, total = leon.handle_load_chunk(
            LoadChunk(0, 2, SRAM_BASE + 0x1000, b"AAAA"))
        assert (received, total) == (2, 2)
        assert leon.loaded_base == SRAM_BASE + 0x1000
        assert sram.host_read(SRAM_BASE + 0x1000, 4) == b"AAAA"

    def test_read_memory_host_side(self, controller):
        leon, _, sram, _, _ = controller
        sram.host_write(SRAM_BASE + 8, b"\x11\x22\x33\x44")
        assert leon.read_memory(SRAM_BASE + 8, 4) == b"\x11\x22\x33\x44"

    def test_read_memory_bad_address(self, controller):
        leon, _, _, _, _ = controller
        assert leon.read_memory(0x9999_0000, 4) is None

    def test_reset_returns_to_initial_state(self, controller):
        leon, gate, _, _, _ = controller
        leon.snoop_fetch(POLL)
        leon.handle_load_chunk(LoadChunk(0, 1, SRAM_BASE + 0x1000, b"\x00" * 4))
        leon.start()
        leon.reset()
        assert leon.state == LeonState.RESET
        assert gate.connected
        assert leon.loaded_base is None

    def test_status_reports_state_and_cycles(self, controller):
        leon, _, _, clock, _ = controller
        leon.snoop_fetch(POLL)
        state, cycles = leon.status()
        assert state == LeonState.POLLING
        assert cycles == 0
