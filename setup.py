"""Legacy shim so `pip install -e .` works without network/wheel.

All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
