#!/usr/bin/env python3
"""The Sim box of Figure 1: offline simulation with instruction traces.

"Based on the reconfigured architecture and the automatically rewritten
application, simulation can provide additional instruction traces to
assist the developer in evaluating the effectiveness of the current
configuration."

This walkthrough compiles a program against the runtime library (UART
console output included), simulates it under two architectures, and uses
the instruction mix + memory trace to explain *why* one configuration
wins — the developer-facing side of the exploration loop.

    python examples/instruction_profiling.py
"""

from repro.analysis import stride_profile
from repro.core import ArchitectureConfig, Simulator, TraceAnalyzer
from repro.toolchain.driver import compile_c_program

SOURCE = """
/* Strided reduction over a 4 KB vector — memory-bound on a 1 KB cache.
 * (A single access stream: exactly what a one-entry stride predictor
 * can follow.  Interleaving two distant arrays would defeat it — try it
 * and watch the accuracy drop to zero.) */
unsigned a[1024];

int main(void) {
    unsigned total = 0;
    for (int i = 0; i < 1024; i++) {
        a[i] = 3 * i;
    }
    for (int pass = 0; pass < 8; pass++)
        for (int i = 0; i < 1024; i += 16)
            total += a[i];
    puts_uart("reduction done");
    print_unsigned(total);
    return (int)(total & 0x7FFFFFFF);
}
"""


def report_for(config: ArchitectureConfig, image):
    simulator = Simulator(config)
    report = simulator.run(image)
    return report


def main() -> None:
    image = compile_c_program(SOURCE, with_libc=True)

    small = ArchitectureConfig().with_dcache_size(1024)
    tuned = ArchitectureConfig().with_dcache_size(1024) \
        .with_prefetch("stride")

    print("=== small cache (1 KB, no prefetch) ===")
    baseline = report_for(small, image)
    for line in baseline.summary_lines():
        print(" ", line)
    print("  UART said:", baseline.uart_output.decode())

    # What the trace tells the analyzer:
    misses = baseline.memory_trace.filter(~baseline.memory_trace.hit)
    print(f"\n  demand misses: {len(misses)}; dominant miss strides:",
          stride_profile(misses)[:3])
    report = TraceAnalyzer().analyze(baseline.memory_trace)
    for rec in report.recommendations:
        print(f"  analyzer: {rec.dimension} = {rec.value} ({rec.reason})")

    print("\n=== same cache + stride prefetch unit ===")
    prefetching = report_for(tuned, image)
    print(f"  cycles: {baseline.cycles} -> {prefetching.cycles} "
          f"({baseline.cycles / prefetching.cycles:.2f}x)")
    stats = prefetching.dcache["prefetch"]
    print(f"  prefetches issued {stats['issued']}, useful "
          f"{stats['useful']} (accuracy {stats['accuracy']:.0%})")

    assert prefetching.cycles < baseline.cycles
    assert prefetching.result_word == baseline.result_word


if __name__ == "__main__":
    main()
