#!/usr/bin/env python3
"""Custom-instruction extension: the paper's "new instructions to the
SPARC base instruction set" dimension, end to end.

A rewrite recipe bundles (1) the CPop1 opcode + simulator semantics,
(2) the source rewrite targeting it, and (3) the synthesis-area cost.
This example accelerates a popcount-of-XOR kernel (a Hamming-distance
primitive) and shows the cycles-vs-slices trade.

    python examples/custom_instruction.py
"""

from repro.core import (
    ArchitectureConfig,
    LiquidProcessorSystem,
    POPCOUNT_RECIPE,
    SynthesisModel,
)

SOURCE = """
/* Hamming distance over neighbouring words of a generated table. */
int popcount_xor(int a, int b) {
    int value = a ^ b;
    int count = 0;
    while (value) {
        count += value & 1;
        value = (value >> 1) & 0x7FFFFFFF;
    }
    return count;
}

int data[64];

int main(void) {
    int total = 0;
    for (int i = 0; i < 64; i++) data[i] = i * 2654435761;
    for (int i = 0; i + 1 < 64; i++)
        total += popcount_xor(data[i], data[i + 1]);
    return total;
}
"""


def main() -> None:
    # ---- software baseline on the stock LEON ---------------------------
    stock = LiquidProcessorSystem()
    software = stock.run_c(SOURCE)
    print(f"software popcount loop : {software.cycles:>7} cycles, "
          f"result {software.result}")

    # ---- apply the rewrite recipe ---------------------------------------
    rewritten, substitutions = POPCOUNT_RECIPE.rewrite_c(SOURCE)
    print(f"\nrewrite recipe replaced {substitutions} call site(s) with "
          f"__builtin_custom({POPCOUNT_RECIPE.extension.opf}, ...)")

    config = POPCOUNT_RECIPE.apply_to_config(ArchitectureConfig())
    liquid = LiquidProcessorSystem(config)   # semantics auto-installed
    accelerated = liquid.run_c(rewritten)
    print(f"custom 'popc' datapath : {accelerated.cycles:>7} cycles, "
          f"result {accelerated.result}")

    assert accelerated.result == software.result
    speedup = software.cycles / accelerated.cycles
    print(f"\nspeedup: {speedup:.2f}x")

    # ---- what it costs in silicon ---------------------------------------
    model = SynthesisModel()
    base_area = model.estimate(ArchitectureConfig())
    ext_area = model.estimate(config)
    print(f"area: {base_area.slices} -> {ext_area.slices} slices "
          f"(+{ext_area.slices - base_area.slices} for the accelerator)")
    print(f"clock: {base_area.frequency_mhz:.1f} -> "
          f"{ext_area.frequency_mhz:.1f} MHz")

    # The generated SPARC now contains the custom instruction:
    asm = __import__("repro.toolchain.cc", fromlist=["compile_c"]) \
        .compile_c(rewritten)
    custom_lines = [line.strip() for line in asm.splitlines()
                    if "custom" in line]
    print("\ncustom instructions in the generated assembly:")
    for line in custom_lines:
        print("  ", line)


if __name__ == "__main__":
    main()
