#!/usr/bin/env python3
"""Workload browser: walk the self-checking kernel registry.

Lists every registered workload (class, footprint, the configuration
axis it is sensitive to), shows one generated kernel, then runs each
one on the functional engine and verifies the RESULT word against its
pure-Python reference model — no golden files, the program checks
itself.

    python examples/workload_browser.py
"""

from repro.workloads import all_workloads, by_class, get


def main() -> None:
    workloads = all_workloads()
    print(f"registry: {len(workloads)} workloads across "
          f"{len(by_class())} classes\n")
    print(f"{'name':<12} {'class':<8} {'axis':<14} {'bytes':>6}  description")
    for w in workloads:
        print(f"{w.name:<12} {w.wclass:<8} {w.sweep_axis:<14} "
              f"{w.footprint_bytes():>6}  {w.description}")

    # Every kernel is generated C with its input embedded as globals —
    # here is what the checksum workload actually compiles.
    source = get("ipcheck").c_source()
    head = "\n".join(source.splitlines()[:6])
    print(f"\ngenerated source of 'ipcheck' (first lines):\n{head}\n    ...")

    print("\nself-checks (functional engine, seed 0):")
    failures = 0
    for w in workloads:
        result = w.self_check(engine="functional")
        failures += 0 if result.ok else 1
        print("  " + result.describe())
    if failures:
        raise SystemExit(f"{failures} workload(s) failed self-check")
    print("\nall workloads verified against their reference models")


if __name__ == "__main__":
    main()
