#!/usr/bin/env python3
"""Quickstart: compile a C program, run it on the Liquid processor over
the control protocol, and read the result back — the paper's §2.6 flow
in a dozen lines.

    python examples/quickstart.py
"""

from repro.core import LiquidProcessorSystem

SOURCE = """
/* Greatest common divisor, the classic way. */
int gcd(int a, int b) {
    while (b) {
        int t = a % b;
        a = b;
        b = t;
    }
    return a;
}

int main(void) {
    return gcd(1071, 462);   /* = 21 */
}
"""


def main() -> None:
    # One object gives you the whole Figure 3 node: LEON core, caches,
    # AHB/APB, boot ROM, leon_ctrl, protocol wrappers — booted and
    # waiting in its polling loop.
    system = LiquidProcessorSystem()

    print("Synthesized configuration (paper Figure 10):")
    print(system.utilization_table())

    # compile (mini-C -> SPARC V8) -> packetize -> UDP load -> start ->
    # run -> read the result word.
    run = system.run_c(SOURCE)
    print(f"\ngcd(1071, 462) = {run.result}")
    print(f"clock cycles   = {run.cycles}  (hardware cycle counter)")
    print(f"model time     = {run.seconds * 1e6:.1f} us at "
          f"{system.bitfile.utilization.frequency_mhz:.0f} MHz")

    # Everything the control console saw:
    print("\ncontrol console:")
    for line in system.listener.console_lines():
        print(" ", line)

    stats = system.statistics()
    print(f"\nD-cache: {stats['dcache']['read_hits']} read hits, "
          f"{stats['dcache']['read_misses']} read misses")
    assert run.result == 21


if __name__ == "__main__":
    main()
