#!/usr/bin/env python3
"""Remote-lab scenario: drive the FPX over a lossy, reordering Internet
path, exactly the situation the paper's multi-packet UDP protocol with
sequence numbers was designed for.  Also demonstrates the web-servlet
interface and the hardware emulator used to develop the control software
before the hardware existed (Figure 4).

    python examples/remote_lab.py
"""

from repro.control import (
    ControlServlet,
    DirectTransport,
    HardwareEmulator,
    LiquidClient,
    LossyTransport,
)
from repro.fpx import FPXPlatform
from repro.mem.memmap import DEFAULT_MAP
from repro.net.channel import ChannelConfig
from repro.toolchain.driver import compile_c_program

PROGRAM = """
/* Count set bits across a table the program builds itself. */
unsigned table[64];

int main(void) {
    unsigned total = 0;
    for (int i = 0; i < 64; i++) table[i] = i * 2654435761u;
    for (int i = 0; i < 64; i++) {
        unsigned v = table[i];
        while (v) { total += v & 1u; v = v >> 1; }
    }
    return (int)total;
}
"""


def main() -> None:
    image = compile_c_program(PROGRAM)
    base, blob = image.flatten()
    print(f"program: {len(blob)} bytes at 0x{base:08x} "
          f"({-(-len(blob) // 128)} UDP chunks)")

    # ---- 1. Over a hostile network ------------------------------------
    platform = FPXPlatform()
    platform.boot()
    transport = LossyTransport(
        platform, platform.config.device_ip, platform.config.control_port,
        channel_config=ChannelConfig(loss=0.2, reorder=0.25,
                                     duplicate=0.1, corrupt=0.05),
        seed=7)
    client = LiquidClient(transport)

    result = client.run_image(image, result_addr=DEFAULT_MAP.result_addr)
    print(f"\nresult over 20% loss / 25% reorder / 5% corruption: "
          f"{result.result_word} in {result.cycles} cycles")
    print("channel damage:", transport.channel_stats())

    # ---- 2. The web interface (servlet analogue) -----------------------
    platform2 = FPXPlatform()
    platform2.boot()
    servlet = ControlServlet(LiquidClient(DirectTransport(
        platform2, platform2.config.device_ip,
        platform2.config.control_port)))
    print("\nservlet session:")
    print(" ", servlet.handle_request({"action": "status"}))
    print(" ", servlet.handle_request({"action": "load",
                                       "address": hex(base),
                                       "hex": blob.hex()}))
    print(" ", servlet.handle_request({"action": "start"}))
    print(" ", servlet.handle_request(
        {"action": "read", "address": hex(DEFAULT_MAP.result_addr)}))

    # ---- 3. The hardware emulator (Figure 4's debugging aid) -----------
    emulator = HardwareEmulator("128.252.153.2", 2000)
    emulated = LiquidClient(DirectTransport(emulator, "128.252.153.2", 2000))
    emulated.load_binary(base, blob)
    emulated.start()
    print(f"\nemulator session: state={emulated.status().state.name} "
          f"(no CPU was harmed — it fakes execution)")
    echoed = emulated.read_memory(base, 8)
    assert echoed == blob[:8]
    print("emulator stores and serves program bytes faithfully.")


if __name__ == "__main__":
    main()
