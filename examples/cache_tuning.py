#!/usr/bin/env python3
"""The Figure 1 loop, end to end: run instrumented, analyze the trace,
let the architecture generator pick a cache, reconfigure through the
reconfiguration server, and show the Figure 8/9 result.

    python examples/cache_tuning.py
"""

import tempfile

from repro.analysis.trace import TraceRecorder
from repro.core import (
    ArchitectureConfig,
    ConfigurationSpace,
    Job,
    LiquidProcessorSystem,
    ReconfigurationServer,
    ResultCache,
    SweepRunner,
    TraceAnalyzer,
)

# The paper's Figure 7 kernel: strided access over a 4 KB array.
KERNEL = """
unsigned count[1024];

int main(void) {
    unsigned i;
    unsigned address;
    volatile unsigned x;
    for (i = 0; i < 100000; i = i + 32) {
        address = i % 1024;
        x = count[address];
    }
    return 0;
}
"""


def main() -> None:
    # --- 1. Instrumented run on a deliberately small cache -------------
    poor = ArchitectureConfig().with_dcache_size(1024)
    system = LiquidProcessorSystem(poor)
    recorder = TraceRecorder().attach(system.platform.dcache)
    image = system.compile_c(KERNEL)
    baseline = system.run_image(image)
    print(f"baseline (1KB dcache): {baseline.cycles} cycles")

    # --- 2. Trace analysis ---------------------------------------------
    analyzer = TraceAnalyzer(candidate_sizes=[1024, 2048, 4096, 8192, 16384])
    report = analyzer.analyze(recorder.trace())
    print("\ntrace analyzer report:")
    for line in report.summary_lines():
        print(" ", line)

    # --- 3. Reconfigure and rerun through the server ---------------------
    tuned_config = analyzer.pick_config(poor, report)
    server = ReconfigurationServer()
    result = server.run_job(Job(image=image, config=tuned_config,
                                name="tuned"))
    print(f"\ntuned ({tuned_config.dcache.size // 1024}KB dcache): "
          f"{result.cycles} cycles "
          f"({baseline.cycles / result.cycles:.2f}x faster)")
    print(f"paid once: {result.seconds_synthesis / 3600:.2f} h synthesis, "
          f"{result.seconds_programming * 1e3:.1f} ms SelectMap programming")

    # --- 4. The full Figure 8 sweep: parallel, with a result cache -------
    # The SweepRunner is the software analogue of the reconfiguration
    # cache: points are evaluated across worker processes and memoised
    # on disk, so re-running the sweep costs nothing.
    print("\nFigure 8 sweep (cycles by D-cache size, 2 workers):")
    with tempfile.TemporaryDirectory() as cache_dir:
        runner = SweepRunner(workers=2, cache=ResultCache(cache_dir))
        outcome = runner.sweep(ConfigurationSpace.paper_cache_sweep(), image)
        for point in outcome.points:
            marker = " <- knee" if point.config.dcache.size == 4096 else ""
            print(f"  {point.config.dcache.size // 1024:>3} KB : "
                  f"{point.cycles:>8} cycles  "
                  f"({point.source}, {point.wall_seconds:.2f}s){marker}")
        rerun = runner.sweep(ConfigurationSpace.paper_cache_sweep(), image)
        assert rerun.stats.simulated == 0
        print(f"re-run: {rerun.stats.cache_hits}/{rerun.stats.points} "
              f"points served from the result cache, 0 simulations")
        front = outcome.pareto_front()
        print("cycles/area Pareto front:",
              ", ".join(f"{p.config.dcache.size // 1024}KB "
                        f"({p.cycles} cyc, {p.slices} slices)"
                        for p in front))

    print("\nreconfiguration ledger:", server.ledger())
    assert result.cycles < baseline.cycles


if __name__ == "__main__":
    main()
