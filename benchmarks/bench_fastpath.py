"""Two-speed execution engine: throughput and window-identity checks.

The claim of record for the fast path: warming the Figure 8 workload on
the :class:`~repro.cpu.fastpath.FunctionalUnit` sustains at least 5x the
instruction throughput of the cycle-accurate engine, while the measured
window after the handoff stays byte-identical to a cold accurate run.
Wall-clock rates go into ``benchmark.extra_info`` so
``pytest benchmarks/bench_fastpath.py --benchmark-only -s`` prints the
comparison.
"""

from __future__ import annotations

import json
import time

from repro.core.sim import Simulator

from .conftest import figure7_image, print_table

#: Acceptance floor: functional steps/s over accurate instructions/s.
SPEEDUP_FLOOR = 5.0
#: Acceptance floors for the block translator: translated steps/s over
#: functional steps/s, and over accurate instructions/s.
TRANSLATED_FLOOR = 5.0
TRANSLATED_ACCURATE_FLOOR = 25.0
WARMUP_BUDGET = 60_000
ROUNDS = 3


def _accurate_rate(image) -> tuple[float, int]:
    best, instructions = 0.0, 0
    for _ in range(ROUNDS):
        sim = Simulator(capture_memory_trace=False, obs=False)
        start = time.perf_counter()
        report = sim.run(image)
        elapsed = time.perf_counter() - start
        best = max(best, report.instructions / elapsed)
        instructions = report.instructions
    return best, instructions


def _functional_rate(image) -> tuple[float, int]:
    best, steps = 0.0, 0
    for _ in range(ROUNDS):
        sim = Simulator(capture_memory_trace=False, obs=False)
        start = time.perf_counter()
        # checkpoint() defaults to the translated engine now; this gate
        # is specifically about the single-instruction functional path.
        sim.checkpoint(image, WARMUP_BUDGET, warmup_engine="fast")
        elapsed = time.perf_counter() - start
        best = max(best, sim.fastpath_instructions / elapsed)
        steps = sim.fastpath_instructions
    return best, steps


def _steady_rate(image, engine: str) -> float:
    """Steady-state fast_forward throughput (steps/s): boot, let the
    engine warm its caches (decode memo, block cache), then time a fixed
    step budget.  The same methodology for both fast engines, so the
    ratio is free of boot/checkpoint overhead."""
    best = 0.0
    for _ in range(ROUNDS):
        sim = Simulator(capture_memory_trace=False, obs=False)
        eng = sim._boot_and_dispatch(image, engine)
        poll = sim.rom_info.poll_address
        eng.fast_forward(2_000, stop_pc=poll)
        start = time.perf_counter()
        steps = eng.fast_forward(WARMUP_BUDGET, stop_pc=poll)
        elapsed = time.perf_counter() - start
        best = max(best, steps / elapsed)
    return best


def test_translated_throughput_floor(benchmark):
    """Block translator vs single-instruction dispatch vs accurate: the
    translated engine must sustain at least 5x the functional engine's
    steady-state step rate (and 25x the accurate engine) on the fig8
    kernel."""
    image = figure7_image()
    accurate_rate, _ = _accurate_rate(image)
    functional_rate = _steady_rate(image, "fast")

    result = {}

    def measure():
        result["rate"] = _steady_rate(image, "translated")
        return result["rate"]

    translated_rate = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = translated_rate / functional_rate
    vs_accurate = translated_rate / accurate_rate
    benchmark.extra_info["functional_steps_per_s"] = round(functional_rate)
    benchmark.extra_info["translated_steps_per_s"] = round(translated_rate)
    benchmark.extra_info["speedup_vs_functional"] = round(speedup, 2)
    benchmark.extra_info["speedup_vs_accurate"] = round(vs_accurate, 2)
    print_table(
        "Block translation throughput (fig8 kernel)",
        ["engine", "rate (steps/s)", "speedup"],
        [["cycle-accurate", f"{accurate_rate:,.0f}", "1x"],
         ["functional", f"{functional_rate:,.0f}",
          f"{functional_rate / accurate_rate:.1f}x"],
         ["translated", f"{translated_rate:,.0f}",
          f"{speedup:.2f}x functional / {vs_accurate:.1f}x accurate"]])
    assert speedup >= TRANSLATED_FLOOR, (
        f"block translation is only {speedup:.2f}x the functional engine "
        f"(floor {TRANSLATED_FLOOR}x)")
    assert vs_accurate >= TRANSLATED_ACCURATE_FLOOR, (
        f"block translation is only {vs_accurate:.1f}x the accurate "
        f"engine (floor {TRANSLATED_ACCURATE_FLOOR}x)")


def test_translated_checkpoint_is_byte_identical(benchmark):
    """A checkpoint warmed on the translated engine must hand off the
    same measured window as a functional or accurate warmup."""
    image = figure7_image()

    def canonical(report) -> str:
        return json.dumps({
            "cycles": report.cycles, "instructions": report.instructions,
            "mix": report.instruction_mix, "dcache": report.dcache,
            "icache": report.icache, "result_word": report.result_word,
            "uart": report.uart_output.hex(), "obs": report.obs,
        }, sort_keys=True, default=str)

    def windowed():
        return Simulator(capture_memory_trace=False).run(
            image, fast_forward=WARMUP_BUDGET, warmup_engine="translated")

    translated = benchmark.pedantic(windowed, rounds=1, iterations=1)
    accurate = Simulator(capture_memory_trace=False).run(
        image, fast_forward=WARMUP_BUDGET, warmup_engine="accurate")
    assert canonical(translated) == canonical(accurate)
    assert translated.fastpath["warmup_engine"] == "translated"


def test_fastpath_throughput_floor(benchmark):
    """Functional warmup vs cycle-accurate execution on the fig8 kernel."""
    image = figure7_image()
    accurate_rate, instructions = _accurate_rate(image)

    result = {}

    def measure():
        result["rate"], result["steps"] = _functional_rate(image)
        return result["rate"]

    functional_rate = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = functional_rate / accurate_rate
    benchmark.extra_info["accurate_instr_per_s"] = round(accurate_rate)
    benchmark.extra_info["functional_steps_per_s"] = round(functional_rate)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    print_table(
        "Two-speed engine throughput (fig8 kernel)",
        ["engine", "rate (instr/s)", "work"],
        [["cycle-accurate", f"{accurate_rate:,.0f}", instructions],
         ["functional", f"{functional_rate:,.0f}", result["steps"]],
         ["speedup", f"{speedup:.2f}x", f">= {SPEEDUP_FLOOR}x required"]])
    assert speedup >= SPEEDUP_FLOOR, (
        f"functional fast path is only {speedup:.2f}x the accurate engine "
        f"(floor {SPEEDUP_FLOOR}x)")


def test_fast_forward_window_is_byte_identical(benchmark):
    """fast_forward warmup must not perturb the measured window."""
    image = figure7_image()

    def canonical(report) -> str:
        return json.dumps({
            "cycles": report.cycles, "instructions": report.instructions,
            "mix": report.instruction_mix, "dcache": report.dcache,
            "icache": report.icache, "result_word": report.result_word,
            "uart": report.uart_output.hex(), "obs": report.obs,
        }, sort_keys=True, default=str)

    def windowed():
        return Simulator(capture_memory_trace=False).run(
            image, fast_forward=WARMUP_BUDGET, warmup_engine="fast")

    fast = benchmark.pedantic(windowed, rounds=1, iterations=1)
    accurate = Simulator(capture_memory_trace=False).run(
        image, fast_forward=WARMUP_BUDGET, warmup_engine="accurate")
    assert canonical(fast) == canonical(accurate)
    assert fast.instructions > 0
    benchmark.extra_info["window_instructions"] = fast.instructions
    benchmark.extra_info["warmup_instructions"] = \
        fast.fastpath["warmup_instructions"]
