"""Ablation: the prefetch unit (§1's "alternative memory structure
(such as a prefetch unit)").

The Figure 7 kernel strides 128 B — four cache lines — so next-line
prefetching fetches the wrong lines while the stride unit runs exactly
one step ahead of the access stream.  The interesting configuration is
the *undersized* 1 KB cache: a stride prefetcher lets the small cache
run at nearly the speed of the 4 KB knee, trading BlockRAMs for a little
prefetch logic — precisely the kind of alternative the paper's
Architecture Generator is meant to surface.
"""

import pytest

from repro.core import ArchitectureConfig, SynthesisModel

from .conftest import print_table, run_on_config

POLICIES = ["none", "nextline", "stride"]


@pytest.fixture(scope="module")
def prefetch_results(fig7_image):
    results = {}
    for policy in POLICIES:
        config = ArchitectureConfig().with_dcache_size(1024) \
            .with_prefetch(policy)
        cycles, seconds = run_on_config(fig7_image, config)
        results[policy] = (cycles, seconds, config)
    # Reference: the Figure 8 knee without prefetching.
    knee_config = ArchitectureConfig().with_dcache_size(4096)
    results["4KB, none"] = (*run_on_config(fig7_image, knee_config),
                            knee_config)
    return results


@pytest.mark.parametrize("policy", POLICIES)
def test_prefetch_policy(benchmark, fig7_image, prefetch_results, policy):
    config = ArchitectureConfig().with_dcache_size(1024) \
        .with_prefetch(policy)
    cycles, _ = benchmark.pedantic(run_on_config,
                                   args=(fig7_image, config),
                                   rounds=1, iterations=1)
    benchmark.extra_info["policy"] = policy
    benchmark.extra_info["model_cycles"] = cycles


def test_prefetch_ablation_table(benchmark, prefetch_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    model = SynthesisModel()
    rows = []
    for name, (cycles, seconds, config) in prefetch_results.items():
        utilization = model.estimate(config)
        rows.append([name, cycles, utilization.slices,
                     utilization.block_rams,
                     f"{utilization.frequency_mhz:.1f} MHz"])
    print_table("Ablation: prefetch unit on a 1KB D-cache (Figure 7 "
                "kernel)", ["Policy", "Cycles", "Slices", "BlockRAMs",
                            "Clock"], rows)

    none_cycles = prefetch_results["none"][0]
    stride_cycles = prefetch_results["stride"][0]
    nextline_cycles = prefetch_results["nextline"][0]
    knee_cycles = prefetch_results["4KB, none"][0]

    # The stride unit rescues the undersized cache...
    assert stride_cycles < none_cycles
    # ...getting within 5% of the 4KB knee with a quarter of the BRAM.
    assert stride_cycles < knee_cycles * 1.05
    # Next-line cannot follow a 128 B stride as well as the stride unit.
    assert stride_cycles < nextline_cycles
    print(f"\nstride unit recovers "
          f"{(none_cycles - stride_cycles) / (none_cycles - knee_cycles):.0%}"
          f" of the 1KB->4KB gap at a fraction of the BlockRAM cost")
