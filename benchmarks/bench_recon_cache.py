"""Experiment E6 (Figure 1, right loop): reconfiguration-cache economics.

"Each such instance requires ~1 hour to synthesize, and the results are
captured in the reconfiguration cache.  At runtime, an application can
switch between these pre-generated modules to improve performance."

The bench runs the Figure 8 sweep through the reconfiguration server
twice: a cold pass (synthesis per point) and a warm pass (cache hits,
SelectMap programming only), and reports the model-time ledger — the
quantitative version of the paper's pre-generation argument.
"""

import pytest

from repro.core import ConfigurationSpace, Job, ReconfigurationServer
from repro.toolchain.driver import compile_c_program

from .conftest import print_table

PROGRAM = "int main(void) { return 7; }"


@pytest.fixture(scope="module")
def sweep_ledger():
    server = ReconfigurationServer()
    image = compile_c_program(PROGRAM)
    space = ConfigurationSpace.paper_cache_sweep()

    cold = []
    for config in space:
        result = server.run_job(Job(image=image, config=config,
                                    name=f"cold-{config.dcache.size}"))
        cold.append(result)
    warm = []
    for config in space:
        result = server.run_job(Job(image=image, config=config,
                                    name=f"warm-{config.dcache.size}"))
        warm.append(result)
    return server, cold, warm


def test_cold_sweep_benchmark(benchmark):
    image = compile_c_program(PROGRAM)

    def cold_pass():
        server = ReconfigurationServer()
        for config in ConfigurationSpace.paper_cache_sweep():
            server.run_job(Job(image=image, config=config))
        return server.ledger()

    ledger = benchmark.pedantic(cold_pass, rounds=1, iterations=1)
    benchmark.extra_info["model_seconds"] = ledger["model_seconds"]
    benchmark.extra_info["syntheses"] = ledger["cache"]["misses"]
    assert ledger["cache"]["misses"] == 5


def test_recon_cache_economics(benchmark, sweep_ledger):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    server, cold, warm = sweep_ledger

    rows = []
    for before, after in zip(cold, warm):
        rows.append([
            before.config_key.split("-")[1],
            f"{before.seconds_synthesis:.0f} s",
            f"{before.seconds_programming * 1000:.1f} ms",
            f"{after.seconds_synthesis:.0f} s",
            f"{after.seconds_programming * 1000:.1f} ms",
        ])
    print_table("E6: per-configuration model time, cold vs warm cache",
                ["dcache", "cold synth", "cold program",
                 "warm synth", "warm program"], rows)

    ledger = server.ledger()
    print(f"\ntotal synthesis paid : {ledger['cache']['synthesis_seconds']:.0f} s"
          f"\ntotal synthesis saved: {ledger['cache']['seconds_saved']:.0f} s"
          f"\nhit rate             : {server.cache.stats.hit_rate:.0%}")

    # Warm switches never synthesize.
    assert all(result.seconds_synthesis == 0.0 for result in warm)
    assert all(result.cache_hit for result in warm)
    # The asymmetry is the paper's point: hours vs milliseconds.
    cold_total = sum(result.seconds_synthesis for result in cold)
    warm_total = sum(result.seconds_programming for result in warm)
    assert cold_total > 10_000 * warm_total

    # The execution itself is identical either way.
    for before, after in zip(cold, warm):
        assert before.cycles == after.cycles
        assert before.result_word == after.result_word == 7
