"""Experiment E4 (§3.2 ablation): the AHB ↔ FPX-SDRAM adapter's design
choices, measured.

The paper argues three things about the adapter:

1. reads should always use a fixed 4-word burst ("Only a couple of
   cycles are wasted when the burst length is shorter, but a significant
   amount of time is gained ... for 4-word bursts");
2. sub-64-bit writes need read-modify-write, "significantly impairing
   performance";
3. write bursts are disallowed, to keep memory integrity.

This bench quantifies 1 and 2 on synthetic AHB transaction streams and
on the real cache-line-fill path.
"""

import pytest

from repro.mem.adapter import AdapterConfig, AhbSdramAdapter
from repro.mem.sdram import FpxSdramController

from .conftest import print_table

BASE = 0x6000_0000
SIZE = 1 << 20


def make_adapter(read_burst_words: int):
    controller = FpxSdramController(BASE, SIZE)
    port = controller.connect("leon")
    return controller, AhbSdramAdapter(port, BASE, SIZE,
                                       AdapterConfig(read_burst_words))


def line_fill_cycles(read_burst_words: int, lines: int = 256) -> int:
    _, adapter = make_adapter(read_burst_words)
    total = 0
    for index in range(lines):
        _, cycles = adapter.read_burst(BASE + index * 32, 8)
        total += cycles
    return total


def sequential_word_cycles(read_burst_words: int, words: int = 1024) -> int:
    _, adapter = make_adapter(read_burst_words)
    total = 0
    for index in range(words):
        _, cycles = adapter.read(BASE + index * 4, 4)
        total += cycles
    return total


@pytest.mark.parametrize("burst_words", [1, 2, 4, 8])
def test_read_burst_policy(benchmark, burst_words):
    cycles = benchmark.pedantic(line_fill_cycles, args=(burst_words,),
                                rounds=1, iterations=1)
    benchmark.extra_info["burst_words"] = burst_words
    benchmark.extra_info["line_fill_cycles"] = cycles


def test_read_burst_table_and_claims(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    fills = {}
    for burst in (1, 2, 4, 8):
        fill = line_fill_cycles(burst)
        seq = sequential_word_cycles(burst)
        fills[burst] = fill
        rows.append([f"{burst} words", fill, seq])
    print_table("E4a: read policy vs cycles (256 line fills / "
                "1024 sequential words)",
                ["Fixed read burst", "Line-fill cycles",
                 "Sequential-read cycles"], rows)

    # The paper's choice (4) beats per-word handshakes substantially.
    assert fills[4] < fills[1] / 2
    # Diminishing returns beyond 4 words exist but are smaller than the
    # 1->4 jump (the paper picked 4 because LEON bursts are <= 4 words).
    assert (fills[1] - fills[4]) > (fills[4] - fills[8])


def test_rmw_write_penalty(benchmark):
    _, adapter = make_adapter(4)

    def measure():
        read_total = sum(adapter.read(BASE + 0x8000 + i * 4, 4)[1]
                         for i in range(256))
        write_total = sum(adapter.write(BASE + 0x10000 + i * 4, 4, i)
                          for i in range(256))
        return read_total, write_total

    read_total, write_total = benchmark.pedantic(measure, rounds=1,
                                                 iterations=1)
    benchmark.extra_info["read_cycles"] = read_total
    benchmark.extra_info["write_cycles"] = write_total

    print_table("E4b: 32-bit write RMW penalty (256 transfers)",
                ["Operation", "Cycles", "Handshakes/transfer"],
                [["read (buffered bursts)", read_total, "1 per 4 words"],
                 ["write (read-modify-write)", write_total, "2 per word"]])

    # "two separate handshakes for each write request, significantly
    # impairing performance"
    assert write_total > 3 * read_total


def test_write_burst_disallowed(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _, adapter = make_adapter(4)
    assert adapter.supports_write_burst is False
    with pytest.raises(RuntimeError):
        adapter.write_burst(BASE, [1, 2, 3, 4])


def test_ablation_write_burst_would_have_helped(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """What the paper gave up for integrity: coalesced 64-bit write
    bursts halve the handshakes for aligned pairs."""
    controller = FpxSdramController(BASE, SIZE)
    port = controller.connect("leon")
    unsafe = AhbSdramAdapter(port, BASE, SIZE,
                             AdapterConfig(4, allow_write_burst=True))
    burst_cycles = unsafe.write_burst(BASE, list(range(64)))

    controller2 = FpxSdramController(BASE, SIZE)
    port2 = controller2.connect("leon")
    safe = AhbSdramAdapter(port2, BASE, SIZE, AdapterConfig(4))
    single_cycles = sum(safe.write(BASE + i * 4, 4, i) for i in range(64))

    print(f"\nE4c: 64-word write: burst {burst_cycles} cycles vs "
          f"RMW singles {single_cycles} cycles "
          f"({single_cycles / burst_cycles:.1f}x)")
    assert burst_cycles < single_cycles / 2
