"""Experiment E3 — Figure 10: device utilization of the synthesized
Liquid Processor System on the Xilinx Virtex XCV2000E.

Paper values: 7900 of 19200 logic slices (41%), 54 of 160 BlockRAMs,
309 external IOBs, synthesized at 30 MHz.  The synthesis model is
calibrated to reproduce these exactly for the baseline configuration,
and this bench also reports how utilization moves across the Figure 8
sweep (each of those cache sizes was its own pre-generated bitfile).
"""

import pytest

from repro.core import ConfigurationSpace, SynthesisModel, figure10_table
from repro.core.config import BASELINE

from .conftest import print_table


def test_fig10_baseline(benchmark):
    model = SynthesisModel()
    utilization = benchmark(model.estimate, BASELINE)
    benchmark.extra_info["slices"] = utilization.slices
    benchmark.extra_info["block_rams"] = utilization.block_rams
    benchmark.extra_info["frequency_mhz"] = utilization.frequency_mhz

    print("\n" + figure10_table())

    assert utilization.slices == 7900
    assert round(utilization.slice_percent) == 41
    assert utilization.block_rams == 54
    assert utilization.iobs == 309
    assert utilization.frequency_mhz == 30.0


def test_fig10_across_the_sweep(benchmark):
    model = SynthesisModel()
    space = ConfigurationSpace.paper_cache_sweep()

    def synthesize_all():
        return [model.synthesize(config) for config in space]

    bitfiles = benchmark.pedantic(synthesize_all, rounds=1, iterations=1)

    rows = []
    for bitfile in bitfiles:
        u = bitfile.utilization
        rows.append([
            f"{bitfile.config.dcache.size // 1024}KB",
            f"{u.slices} ({u.slice_percent:.0f}%)",
            f"{u.block_rams} ({u.block_ram_percent:.0f}%)",
            f"{u.frequency_mhz:.1f} MHz",
            f"{bitfile.synthesis_seconds / 3600:.2f} h",
        ])
    print_table("Figure 10 extended: utilization across the D-cache sweep",
                ["D-cache", "Slices", "BlockRAMs", "Clock", "Synth time"],
                rows)

    # Every point fits the device; BRAMs grow monotonically with size.
    brams = [b.utilization.block_rams for b in bitfiles]
    assert all(b.utilization.fits() for b in bitfiles)
    assert brams == sorted(brams)
    # Every instance takes on the order of an hour, as the paper states.
    for bitfile in bitfiles:
        assert 1800 < bitfile.synthesis_seconds < 7200
