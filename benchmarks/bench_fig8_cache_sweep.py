"""Experiment E1 — Figure 8: array-access running time vs D-cache size.

Paper §4: "we changed the data cache size between 1KB and 16KB while
keeping the cache line size constant at 32B and the instruction cache
size constant at 1KB.  A simple C program was developed to access a 4KB
array under these cache configurations. ... A hardware state machine
counts and returns the number of clock cycles to run this program."

The paper's table values are lost to OCR; the claim of record is the
*shape*: large flat cycle counts at 1 KB and 2 KB (the 4 KB working set
thrashes a direct-mapped cache), then "no cache misses (excluding the
initial loading of the cache) once the cache size reaches 4KB" —
a flat minimum from 4 KB up.
"""

import pytest

from repro.core import ArchitectureConfig, ConfigurationSpace

from .conftest import print_table, sweep_point

CACHE_SIZES = [1024, 2048, 4096, 8192, 16384]


@pytest.fixture(scope="module")
def fig8_outcome(fig7_image):
    from repro.core import ResultCache, SweepRunner

    runner = SweepRunner(cache=ResultCache())
    outcome = runner.sweep(ConfigurationSpace.paper_cache_sweep(),
                           fig7_image)
    # Re-running the sweep must be free: every point served from the
    # result cache, zero fresh simulations.
    rerun = runner.sweep(ConfigurationSpace.paper_cache_sweep(), fig7_image)
    assert rerun.stats.simulated == 0
    assert rerun.stats.cache_hits == outcome.stats.points
    return outcome


@pytest.fixture(scope="module")
def sweep_cycles(fig8_outcome):
    return {point.config.dcache.size: (point.cycles, point.seconds)
            for point in fig8_outcome.points}


@pytest.mark.parametrize("size", CACHE_SIZES)
def test_fig8_running_time(benchmark, fig7_image, sweep_cycles, size):
    """One Figure 8 row per cache size; wall time benchmarks the sweep
    engine evaluating the point, extra_info carries the model's cycle
    count.  The fresh evaluation must reproduce the sweep's cached
    result exactly."""
    config = ArchitectureConfig().with_dcache_size(size)
    point = benchmark.pedantic(
        sweep_point, args=(fig7_image, config), rounds=1, iterations=1)
    benchmark.extra_info["dcache_bytes"] = size
    benchmark.extra_info["model_cycles"] = point.cycles
    benchmark.extra_info["model_seconds"] = point.seconds
    assert point.cycles == sweep_cycles[size][0]  # deterministic


def test_fig8_table_and_shape(benchmark, sweep_cycles):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [[f"{size // 1024}KB", sweep_cycles[size][0]]
            for size in CACHE_SIZES]
    print_table("Figure 8: Array access running time",
                ["Data Cache Size", "Number of clock cycles"], rows)

    cycles = {size: sweep_cycles[size][0] for size in CACHE_SIZES}
    # Thrash region is flat and high.
    assert cycles[1024] == cycles[2048]
    # The knee: 4 KB fits the working set.
    assert cycles[4096] < cycles[1024]
    # Beyond the knee nothing improves ("no cache misses ... once the
    # cache size reaches 4KB").
    assert cycles[4096] == cycles[8192] == cycles[16384]
    # The win is substantial (the paper's figure shows a visible drop).
    improvement = (cycles[1024] - cycles[4096]) / cycles[1024]
    print(f"\nknee improvement: {improvement:.1%} "
          f"({cycles[1024]} -> {cycles[4096]} cycles)")
    assert improvement > 0.10


def test_fig8_obs_report(benchmark, fig8_outcome):
    """Telemetry view of the knee: render the 4 KB point's program-window
    snapshot and its delta against the thrashing 1 KB point — the
    cache-miss series must explain the cycle drop."""
    from repro.obs.report import diff_reports, render_text

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_size = {p.config.dcache.size: p for p in fig8_outcome.points}
    knee, thrash = by_size[4096], by_size[1024]
    print("\n" + render_text(knee.obs, title="fig8 knee point (4KB dcache)"))
    print("\n" + diff_reports(knee.obs, thrash.obs,
                              title="4KB - 1KB delta"))
    knee_misses = knee.obs["counters"]["cache.read_misses{cache=dcache}"]
    thrash_misses = thrash.obs["counters"]["cache.read_misses{cache=dcache}"]
    assert knee_misses < thrash_misses
    assert knee.obs["counters"]["pipeline.cycles"] == knee.cycles
