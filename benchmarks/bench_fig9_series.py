"""Experiment E2 — Figure 9: the Figure 8 data in graphical form.

"Figure 9 illustrates the data shown in Figure 8 in graphical form.
This clearly shows that there are no cache misses (excluding the initial
loading of the cache) once the cache size reaches 4KB."

This bench emits the (cache size, average running time) series and an
ASCII rendering of the figure.  "Average" is taken over repeated runs of
the same program, as the paper did; the model is deterministic, and the
bench verifies that (zero variance), which is itself a property the
hardware counter showed.
"""

import pytest

from repro.core import ArchitectureConfig, ConfigurationSpace, SweepRunner

from .conftest import print_table, sweep_point

CACHE_SIZES = [1024, 2048, 4096, 8192, 16384]
REPEATS = 3


@pytest.fixture(scope="module")
def series(fig7_image):
    """REPEATS independent (uncached) sweeps — the "average" the paper
    took over repeated hardware runs, which determinism degenerates."""
    sweeps = [SweepRunner().sweep(ConfigurationSpace.paper_cache_sweep(),
                                  fig7_image)
              for _ in range(REPEATS)]
    points = []
    for index, size in enumerate(CACHE_SIZES):
        runs = [sweep.points[index].cycles for sweep in sweeps]
        points.append((size, sum(runs) / len(runs), min(runs), max(runs)))
    return points


def test_fig9_series_benchmark(benchmark, fig7_image, series):
    config = ArchitectureConfig().with_dcache_size(4096)
    benchmark.pedantic(sweep_point, args=(fig7_image, config),
                       rounds=1, iterations=1)
    benchmark.extra_info["series"] = [
        {"cache_bytes": size, "avg_cycles": avg}
        for size, avg, _, _ in series
    ]


def test_fig9_plot_and_determinism(benchmark, series):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [[f"{size // 1024}KB", f"{avg:.0f}"] for size, avg, _, _ in series]
    print_table("Figure 9 series: average running time vs cache size",
                ["Cache size", "Avg cycles"], rows)

    # ASCII plot of the figure.
    peak = max(avg for _, avg, _, _ in series)
    print("\nFigure 9 (ASCII):")
    for size, avg, _, _ in series:
        bar = "#" * int(40 * avg / peak)
        print(f"  {size // 1024:>3} KB | {bar} {avg:.0f}")

    # Repeated runs are cycle-identical (hardware-counter determinism).
    for size, avg, low, high in series:
        assert low == high == avg

    # Monotone non-increasing with a strict knee at 4 KB.
    averages = [avg for _, avg, _, _ in series]
    assert all(a >= b for a, b in zip(averages, averages[1:]))
    assert averages[1] > averages[2]
