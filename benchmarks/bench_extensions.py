"""Ablation benches for §1's remaining configuration dimensions:
custom instructions ("specialized hardware to accelerate frequently used
instructions or instruction sequences / new instructions to the SPARC
base instruction set") and the multiplier option.
"""

import pytest

from repro.core import (
    ArchitectureConfig,
    LiquidProcessorSystem,
    POPCOUNT_RECIPE,
    SynthesisModel,
)

from .conftest import print_table

POPCOUNT_SOURCE = """
int popcount_xor(int a, int b) {
    int value = a ^ b;
    int count = 0;
    while (value) {
        count += value & 1;
        value = (value >> 1) & 0x7FFFFFFF;
    }
    return count;
}

int data[64];

int main(void) {
    int total = 0;
    for (int i = 0; i < 64; i++) data[i] = i * 2654435761;
    for (int i = 0; i + 1 < 64; i++)
        total += popcount_xor(data[i], data[i + 1]);
    return total;
}
"""

MULTIPLY_SOURCE = """
int main(void) {
    int acc = 1;
    for (int i = 1; i < 500; i++) {
        acc = acc * i + i;
    }
    return acc & 0x7FFFFFFF;
}
"""


class TestCustomInstructionAblation:
    @pytest.fixture(scope="class")
    def runs(self):
        software = LiquidProcessorSystem().run_c(POPCOUNT_SOURCE)
        rewritten, hits = POPCOUNT_RECIPE.rewrite_c(POPCOUNT_SOURCE)
        assert hits == 1
        config = POPCOUNT_RECIPE.apply_to_config(ArchitectureConfig())
        accelerated = LiquidProcessorSystem(config).run_c(rewritten)
        return software, accelerated, config

    def test_accelerated_run_benchmark(self, benchmark, runs):
        software, accelerated, config = runs
        rewritten, _ = POPCOUNT_RECIPE.rewrite_c(POPCOUNT_SOURCE)
        cycles = benchmark.pedantic(
            lambda: LiquidProcessorSystem(config).run_c(rewritten).cycles,
            rounds=1, iterations=1)
        benchmark.extra_info["software_cycles"] = software.cycles
        benchmark.extra_info["accelerated_cycles"] = accelerated.cycles

    def test_speedup_and_area_tradeoff(self, benchmark, runs):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        software, accelerated, config = runs
        model = SynthesisModel()
        base_slices = model.estimate(ArchitectureConfig()).slices
        ext_slices = model.estimate(config).slices

        speedup = software.cycles / accelerated.cycles
        print_table(
            "Ablation: popcount custom instruction",
            ["Variant", "Cycles", "Result", "Slices"],
            [["software loop", software.cycles, software.result,
              base_slices],
             ["custom popc insn", accelerated.cycles, accelerated.result,
              ext_slices]])
        print(f"\nspeedup {speedup:.2f}x for "
              f"{ext_slices - base_slices} extra slices")

        assert accelerated.result == software.result
        assert speedup > 3.0
        assert ext_slices > base_slices


class TestMultiplierAblation:
    @pytest.fixture(scope="class")
    def runs(self):
        results = {}
        for multiplier in ("iterative", "16x16", "32x32"):
            system = LiquidProcessorSystem(
                ArchitectureConfig(multiplier=multiplier))
            run = system.run_c(MULTIPLY_SOURCE)
            utilization = system.bitfile.utilization
            results[multiplier] = (run, utilization)
        return results

    def test_multiplier_benchmark(self, benchmark, runs):
        benchmark.pedantic(
            lambda: LiquidProcessorSystem(
                ArchitectureConfig(multiplier="16x16")
            ).run_c(MULTIPLY_SOURCE).cycles,
            rounds=1, iterations=1)
        for name, (run, _) in runs.items():
            benchmark.extra_info[f"cycles_{name}"] = run.cycles

    def test_multiplier_tradeoff_table(self, benchmark, runs):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rows = []
        for name, (run, utilization) in runs.items():
            rows.append([name, run.cycles, utilization.slices,
                         f"{utilization.frequency_mhz:.1f} MHz",
                         f"{run.seconds * 1e3:.3f} ms"])
        print_table("Ablation: multiplier option on a multiply-heavy "
                    "kernel", ["Multiplier", "Cycles", "Slices", "Clock",
                               "Model time"], rows)

        cycles = {name: run.cycles for name, (run, _) in runs.items()}
        # All three compute the same answer.
        results = {run.result for run, _ in runs.values()}
        assert len(results) == 1
        # Faster multipliers strictly reduce cycle counts.
        assert cycles["32x32"] < cycles["16x16"] < cycles["iterative"]
        # But area grows: the liquid trade-off.
        slices = {name: u.slices for name, (_, u) in runs.items()}
        assert slices["32x32"] > slices["16x16"] > slices["iterative"]
