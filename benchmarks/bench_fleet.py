"""Experiment E10: multi-tenant fleet service under load.

The paper's web-accessible lab scaled out: ≥1000 load-and-execute jobs
from four tenants scheduled across twelve emulated FPX nodes sharing
one reconfiguration cache, with one node behind a scripted
wedged-then-lossy transport.  The bench verifies the fleet-level
properties the scheduler promises — per-tenant fairness (no
starvation), quarantine-and-recovery of the chaos device without losing
a job, cross-tenant bitfile reuse, and byte-identical results across
two runs with the same seed — and reports per-tenant latency
percentiles plus per-device utilization.
"""

import json

import pytest

from repro.control.fleet import ChaosClientFactory, FleetScheduler
from repro.core import Job
from repro.core.config import BASELINE
from repro.obs import MetricsRegistry
from repro.toolchain.driver import compile_c_program

from .conftest import print_table

PROGRAM = "int main(void) { return 6 * 7; }"
TENANTS = ("gold", "silver", "bronze", "iron")
JOBS_PER_TENANT = 250
DEVICES = 12
CHAOS_DEVICE = "fpx11"
DCACHE_SIZES = (1024, 4096, 8192, 16384)
SEED = 31


def build_fleet() -> FleetScheduler:
    image = compile_c_program(PROGRAM)
    configs = [BASELINE.with_dcache_size(size) for size in DCACHE_SIZES]
    fleet = FleetScheduler(
        devices=[f"fpx{i:02d}" for i in range(DEVICES)],
        client_factories={CHAOS_DEVICE: ChaosClientFactory(
            ["device-down", "device-down", "burst-loss"], seed=SEED)},
        quarantine_after=2, quarantine_ticks=24, probe_every=50)
    for tenant_index, tenant in enumerate(TENANTS):
        for index in range(JOBS_PER_TENANT):
            fleet.submit(
                tenant,
                Job(image=image,
                    config=configs[(tenant_index + index) % len(configs)],
                    name=f"{tenant}-{index}"),
                priority=1 if index % 50 == 0 else 0)
    return fleet


@pytest.fixture(scope="module")
def fleet_run():
    """One full drain plus an identically seeded rerun (the
    determinism oracle)."""
    fleet = build_fleet()
    fleet.drain()
    rerun = build_fleet()
    rerun.drain()
    return fleet, rerun


def test_fleet_load_benchmark(benchmark, fleet_run):
    fleet, _ = fleet_run
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ledger = fleet.ledger()
    jobs = ledger["jobs"]
    assert jobs["submitted"] == len(TENANTS) * JOBS_PER_TENANT >= 1000
    assert jobs["completed"] == jobs["submitted"]
    assert jobs["failed"] == 0

    benchmark.extra_info["jobs"] = jobs["submitted"]
    benchmark.extra_info["makespan_model_seconds"] = \
        ledger["makespan_seconds"]
    benchmark.extra_info["cache_misses"] = ledger["cache"]["misses"]
    benchmark.extra_info["cache_hits"] = ledger["cache"]["hits"]
    benchmark.extra_info["requeued"] = jobs["requeued"]

    print_table(
        "E10 fleet: per-tenant latency (model seconds)",
        ["tenant", "completed", "p50", "p99", "max queue depth"],
        [[tenant,
          stats["completed"],
          stats["p50_latency_seconds"],
          stats["p99_latency_seconds"],
          stats["max_queue_depth"]]
         for tenant, stats in ledger["tenants"].items()])
    print_table(
        "E10 fleet: devices",
        ["device", "jobs", "utilization", "reconfigs", "failures",
         "quarantines"],
        [[device, stats["jobs"], stats["utilization"],
          stats["reconfigurations"], stats["failures"],
          stats["quarantines"]]
         for device, stats in ledger["devices"].items()])


def test_no_tenant_is_starved(fleet_run):
    """Fairness: every tenant's work interleaves through the whole run —
    mean completion index per tenant stays within 1.5× of any other's."""
    fleet, _ = fleet_run
    means = {}
    for tenant in TENANTS:
        indexes = [r.completion_index for r in fleet.completed
                   if r.tenant == tenant]
        assert len(indexes) == JOBS_PER_TENANT
        means[tenant] = sum(indexes) / len(indexes)
    assert max(means.values()) / min(means.values()) < 1.5, means


def test_chaos_device_quarantined_and_recovered(fleet_run):
    fleet, _ = fleet_run
    chaos = fleet.ledger()["devices"][CHAOS_DEVICE]
    assert chaos["quarantines"] >= 1
    assert chaos["recoveries"] >= 1
    assert chaos["jobs"] >= 1          # it rejoined and did real work
    assert fleet.jobs_requeued >= 1
    assert fleet.jobs_failed == 0      # ...without losing anything


def test_shared_cache_amortizes_synthesis(fleet_run):
    fleet, _ = fleet_run
    cache = fleet.ledger()["cache"]
    assert cache["entries"] == len(DCACHE_SIZES)
    assert cache["misses"] == len(DCACHE_SIZES)
    assert cache["hits"] > cache["misses"]
    assert cache["seconds_saved"] > cache["synthesis_seconds"]


def test_fixed_seed_runs_are_byte_identical(fleet_run):
    fleet, rerun = fleet_run
    first = fleet.canonical_results()
    assert first == rerun.canonical_results()
    rows = json.loads(first)
    assert len(rows) == len(TENANTS) * JOBS_PER_TENANT
    assert all(row["ok"] for row in rows)


def test_fleet_obs_series_published(fleet_run):
    fleet, _ = fleet_run
    registry = MetricsRegistry()
    fleet.publish_obs(registry)
    snap = registry.snapshot()
    assert snap["counters"]["fleet.jobs_submitted"] \
        == len(TENANTS) * JOBS_PER_TENANT
    for tenant in TENANTS:
        hist = snap["histograms"][
            f"fleet.job_latency_seconds{{tenant={tenant}}}"]
        assert hist["count"] == JOBS_PER_TENANT
    utilizations = [
        snap["gauges"][f"fleet.device_utilization{{device=fpx{i:02d}}}"]
        for i in range(DEVICES)]
    assert all(0.0 <= value <= 1.0 for value in utilizations)
    assert max(utilizations) > 0.5
