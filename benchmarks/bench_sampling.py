"""Sampled simulation: the wall-clock claim of record.

For each long-running registry kernel (~1-2 M instructions), evaluating
a configuration point by sampling must cost at most a tenth of the
full-detail cycle-accurate run, with the full run's true cycle count
inside the sampled 95% confidence interval.  The protocol matches how
sampling is actually used: a serial sweep over one architectural
family, where every point shares the memoised survey and checkpoint
passes (they are architectural, hence config-independent) and pays
only for its own cycle-accurate measure phase.  The full-detail
baseline is the sweep engine's own full-detail evaluation — same
simulator construction, same obs configuration.
"""

from __future__ import annotations

import time

import pytest

from repro.core import ArchitectureConfig, ConfigurationSpace, SweepRunner
from repro.core.sampling import SamplingPlan
from repro.core.sim import Simulator
from repro.workloads import get

from .conftest import print_table

#: Acceptance floor: full-detail seconds over per-point sampled seconds.
SPEEDUP_FLOOR = 10.0
#: One architectural family — the D-cache sweep the paper's Figure 8
#: walks, so the sampled points answer a real experimental question.
SWEEP_SIZES = [1024, 2048, 4096, 8192]
PLAN_SEED = 0

#: kernel -> (n_windows, window_length, ramp_length), grid-searched for
#: interval coverage (see tests/core/test_sampling_stats.py for the
#: small-kernel half of the tuning story).
PLANS = {
    "xtea_stream": (24, 1000, 2048),
    "fir_stream": (16, 500, 2048),
    "ipsum_stream": (32, 500, 2048),
}


@pytest.mark.parametrize("name", sorted(PLANS))
def test_sampled_point_speedup_and_coverage(benchmark, name):
    """≥10x per point with truth inside the 95% CI, per kernel."""
    n, length, ramp = PLANS[name]
    workload = get(name)
    image = workload.image()
    base = ArchitectureConfig()

    start = time.perf_counter()
    report = Simulator(base, capture_memory_trace=False).run(
        image, max_instructions=workload.max_instructions)
    full_seconds = time.perf_counter() - start
    truth = report.cycles
    assert workload.check(report.result_word)

    space = ConfigurationSpace(base)
    space.add_dimension("dcache_size", SWEEP_SIZES)
    plan = SamplingPlan(n_windows=n, window_length=length,
                        ramp_length=ramp, seed=PLAN_SEED)

    result = {}

    def sampled_sweep():
        start = time.perf_counter()
        result["outcome"] = SweepRunner(workers=0).sweep(
            space, image, max_instructions=workload.max_instructions,
            sampling=plan)
        result["seconds"] = time.perf_counter() - start
        return result["seconds"]

    benchmark.pedantic(sampled_sweep, rounds=1, iterations=1)
    outcome, sweep_seconds = result["outcome"], result["seconds"]
    points = outcome.points
    per_point = sweep_seconds / len(points)
    speedup = full_seconds / per_point

    # Every point is a real, self-checked execution of the kernel.
    for point in points:
        assert workload.check(point.result_word), point.config.key()
        assert point.sampled["total_instructions"] == report.instructions

    baseline = next(p for p in points
                    if p.config.dcache.size == base.dcache.size)
    estimate = baseline.sampled["estimated_cycles"]
    ci_half = baseline.sampled["cycles_ci_half"]
    covered = ci_half is not None and abs(truth - estimate) <= ci_half

    benchmark.extra_info["full_detail_s"] = round(full_seconds, 2)
    benchmark.extra_info["sampled_per_point_s"] = round(per_point, 2)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    benchmark.extra_info["truth_cycles"] = truth
    benchmark.extra_info["estimated_cycles"] = round(estimate)
    benchmark.extra_info["ci_half_cycles"] = round(ci_half)
    print_table(
        f"Sampled vs full-detail evaluation ({name})",
        ["protocol", "seconds/point", "cycles"],
        [["full detail", f"{full_seconds:.2f}", f"{truth:,}"],
         ["sampled (4-point family sweep)", f"{per_point:.2f}",
          f"{estimate:,.0f} ± {ci_half:,.0f}"],
         ["speedup", f"{speedup:.1f}x", f">= {SPEEDUP_FLOOR}x required"]])

    assert speedup >= SPEEDUP_FLOOR, (
        f"{name}: sampled evaluation is only {speedup:.1f}x full detail "
        f"(floor {SPEEDUP_FLOOR}x)")
    assert covered, (
        f"{name}: truth {truth} outside the 95% interval "
        f"{estimate:.0f} ± {ci_half:.0f}")
