"""Workload x configuration matrix: the paper's claim at breadth.

Sweeps every registry workload across a configuration space spanning
cache geometry and multiplier implementation, self-checks every cell
against the workload's reference model, and reports which architectural
family wins per workload class — demonstrating that the winner is
workload-dependent, which is the whole argument for a reconfigurable
("liquid") architecture.

The matrix goes through the ResultCache, so a re-run is all cache hits
and the report is byte-identical — the determinism contract the sweep
engine carries over to matrices.
"""

from __future__ import annotations

import json

import pytest

from repro.core import ArchitectureConfig, ConfigurationSpace, ResultCache, SweepRunner
from repro.workloads import all_workloads, by_class

from .conftest import print_table

MAX_INSTRUCTIONS = 2_000_000


def matrix_space() -> ConfigurationSpace:
    """Two memory-system points x two datapath points: small but wide
    enough that different workload classes pick different winners."""
    space = ConfigurationSpace(ArchitectureConfig())
    space.add_dimension("dcache_size", [1024, 8192])
    space.add_dimension("multiplier", ["iterative", "16x16"])
    return space


@pytest.fixture(scope="module")
def matrix_run(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("matrix-cache")
    runner = SweepRunner(cache=ResultCache(cache_dir))
    outcome = runner.sweep_matrix(all_workloads(), matrix_space(),
                                  max_instructions=MAX_INSTRUCTIONS)
    rerun = SweepRunner(cache=ResultCache(cache_dir)).sweep_matrix(
        all_workloads(), matrix_space(),
        max_instructions=MAX_INSTRUCTIONS)
    return outcome, rerun


def test_matrix_covers_registry_and_self_checks(matrix_run, benchmark):
    outcome, _ = matrix_run
    space_size = matrix_space().size
    assert len(outcome.cells) == len(all_workloads()) * space_size
    # Every cell passes its workload's self-check: sweeping the
    # architecture never changes what the program computes.
    assert outcome.failed_checks() == []
    assert len(by_class()) >= 4

    def report():
        return outcome.report_text()

    text = benchmark.pedantic(report, rounds=1, iterations=1)
    winners = outcome.winner_by_class()
    benchmark.extra_info["winner_by_class"] = winners
    benchmark.extra_info["points"] = outcome.stats.points
    rows = [[name, point.config.key(), point.cycles,
             f"{point.seconds * 1e6:.1f}us"]
            for name, point in outcome.winner_by_workload().items()]
    print_table("Workload x config matrix winners",
                ["workload", "winning config", "cycles", "model time"],
                rows)
    print(text)


def test_matrix_rerun_is_byte_identical(matrix_run):
    outcome, rerun = matrix_run
    # Second run: every point served from the cache, no simulation.
    assert rerun.stats.simulated == 0
    assert rerun.stats.cache_hits == rerun.stats.points
    assert outcome.canonical_json() == rerun.canonical_json()
    report = json.loads(outcome.canonical_json())
    assert set(report) == {"metric", "cells", "winner_by_workload",
                           "winner_by_class"}


def test_multiplier_sensitivity_separates_classes(matrix_run):
    """The MAC-bound FIR kernel must prefer the fast multiplier, while
    the multiplier choice must not change CRC32's cycle count at all —
    per-workload sensitivity is what the registry axis metadata claims."""
    outcome, _ = matrix_run
    fir_winner = outcome.winner_by_workload()["fir"]
    assert "mul16x16" in fir_winner.config.key()
    by_dcache: dict[int, set[int]] = {}
    for cell in outcome.cells_for("crc32"):
        by_dcache.setdefault(cell.point.config.dcache.size, set()).add(
            cell.point.cycles)
    # Same dcache size, different multiplier -> identical cycles.
    assert all(len(cycles) == 1 for cycles in by_dcache.values())
