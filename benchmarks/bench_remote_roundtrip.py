"""Experiment E5 (system claim, §1/§2): remote load/execute round trips.

The platform's reason to exist is that it "can be instantiated,
configured, and executed via the Internet".  This bench measures the
command-protocol cost of that claim: packets and transmissions per
program load over a clean LAN and over a lossy Internet-like channel,
and the end-to-end status→load→start→run→read round trip.
"""

import pytest

from repro.control import DirectTransport, LiquidClient, LossyTransport
from repro.fpx import FPXPlatform
from repro.mem.memmap import DEFAULT_MAP
from repro.net.channel import ChannelConfig
from repro.toolchain.driver import compile_c_program

from .conftest import print_table

PROGRAM = """
int main(void) {
    int total = 0;
    for (int i = 0; i < 100; i++) total += i;
    return total;
}
"""


def fresh_direct():
    platform = FPXPlatform()
    platform.boot()
    transport = DirectTransport(platform, platform.config.device_ip,
                                platform.config.control_port)
    return platform, transport, LiquidClient(transport)


def fresh_lossy(loss, reorder, seed=99):
    platform = FPXPlatform()
    platform.boot()
    transport = LossyTransport(
        platform, platform.config.device_ip, platform.config.control_port,
        channel_config=ChannelConfig(loss=loss, reorder=reorder), seed=seed)
    return platform, transport, LiquidClient(transport)


@pytest.fixture(scope="module")
def image():
    return compile_c_program(PROGRAM)


def test_direct_roundtrip(benchmark, image):
    platform, transport, client = fresh_direct()

    def flow():
        return client.run_image(image, result_addr=DEFAULT_MAP.result_addr)

    result = benchmark.pedantic(flow, rounds=1, iterations=1)
    benchmark.extra_info["model_cycles"] = result.cycles
    benchmark.extra_info["payloads_sent"] = transport.sent_payloads
    assert result.result_word == sum(range(100))


@pytest.mark.parametrize("loss", [0.0, 0.1, 0.3])
def test_lossy_roundtrip(benchmark, image, loss):
    platform, transport, client = fresh_lossy(loss, reorder=0.2)

    def flow():
        return client.run_image(image, result_addr=DEFAULT_MAP.result_addr)

    result = benchmark.pedantic(flow, rounds=1, iterations=1)
    benchmark.extra_info["loss"] = loss
    benchmark.extra_info["payloads_sent"] = transport.sent_payloads
    assert result.result_word == sum(range(100))


def test_transmission_overhead_table(benchmark, image):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    base, blob = image.flatten()
    minimum_chunks = -(-len(blob) // 128)
    for loss in (0.0, 0.1, 0.3):
        platform, transport, client = fresh_lossy(loss, reorder=0.2)
        client.run_image(image, result_addr=DEFAULT_MAP.result_addr)
        rows.append([f"{loss:.0%}", transport.sent_payloads,
                     transport.received_payloads])
    print_table(
        f"E5: transmissions per full round trip "
        f"({len(blob)} B program = {minimum_chunks} chunks minimum)",
        ["Loss rate", "Payloads sent", "Responses received"], rows)
    # More loss costs more transmissions, never correctness.
    assert rows[0][1] <= rows[2][1]


def test_program_reload_cheaper_than_first_load(benchmark, image):
    """Re-executing a loaded program (paper §3.1) needs just one START."""
    platform, transport, client = fresh_direct()
    client.run_image(image, result_addr=DEFAULT_MAP.result_addr)
    sent_before = transport.sent_payloads

    def rerun():
        client.start()
        transport.run_device_program()
        return client.status()

    status = benchmark.pedantic(rerun, rounds=1, iterations=1)
    resent = transport.sent_payloads - sent_before
    benchmark.extra_info["payloads_for_rerun"] = resent
    print(f"\nE5b: re-execution needed {resent} payloads "
          f"(first run needed {sent_before})")
    assert status.cycles > 0
    assert resent < sent_before / 2
