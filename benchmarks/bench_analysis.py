"""Static-analysis throughput: how fast the verifier chews through the
registry kernels.

The analysis pipeline runs once per image per CI lint invocation and
once per cell-row in ``sweep_matrix(analyze=True)``, so its cost has to
stay negligible next to simulation.  The bench records instructions
analyzed per pass into ``extra_info`` so regressions show up as a rate,
not just host wall time.
"""

from __future__ import annotations

import pytest

from repro.analysis.cfg import build_cfg, text_segment
from repro.analysis.legality import legal_sites
from repro.analysis.verify import analyze_image
from repro.workloads import all_workloads

from .conftest import print_table

WORKLOADS = {wl.name: wl for wl in all_workloads()}


@pytest.fixture(scope="module")
def images():
    return {name: wl.image(0) for name, wl in WORKLOADS.items()}


@pytest.mark.parametrize("name", ["xtea", "qsort_rec"])
def test_bench_full_verification(benchmark, images, name):
    image = images[name]
    words = len(text_segment(image)[1]) // 4

    report = benchmark(lambda: analyze_image(image, subject=name).report)
    assert not report.errors
    benchmark.extra_info["instructions"] = words
    benchmark.extra_info["findings"] = len(report)


def test_bench_cfg_recovery_alone(benchmark, images):
    image = images["qsort_rec"]
    cfg = benchmark(lambda: build_cfg(image))
    benchmark.extra_info["blocks"] = len(cfg.blocks)
    benchmark.extra_info["functions"] = len(cfg.function_entries)


def test_bench_legality_scan(benchmark, images):
    image = images["fir"]
    benchmark(lambda: legal_sites(image))


def test_analysis_cost_summary(images):
    """Not a timing bench: one table of per-kernel analysis volume so
    the report shows what the verifier covers."""
    rows = []
    for name, image in sorted(images.items()):
        analysis = analyze_image(image, subject=name)
        words = len(text_segment(image)[1]) // 4
        rows.append((name, words, len(analysis.cfg.blocks),
                     len(analysis.functions),
                     len(analysis.report.warnings)))
    print_table(
        "static analysis coverage",
        ["kernel", "instrs", "blocks", "functions", "warnings"], rows)
    assert all(row[1] > 0 for row in rows)
