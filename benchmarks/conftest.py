"""Shared infrastructure for the benchmark harness.

Each benchmark regenerates one table or figure of the paper's evaluation
(see DESIGN.md §4 for the experiment index).  The quantity of record is
*model cycles* (what the paper's hardware counter reports), captured into
``benchmark.extra_info``; pytest-benchmark's wall-clock numbers measure
the simulator itself.  Each bench also prints the paper-shaped rows so
``pytest benchmarks/ --benchmark-only -s`` reproduces the tables.
"""

from __future__ import annotations

import pytest

from repro.core import ArchitectureConfig, LiquidProcessorSystem
from repro.toolchain.driver import compile_c_program

#: The paper's Figure 7 kernel, verbatim in spirit: a strided sweep over a
#: 4 KB array.  The loop bound is configurable; the OCR of the paper lost
#: the exact constant, so we use 100 000 (≈3 100 iterations), which gives
#: stable averages in seconds of host time.
FIGURE7_SOURCE = r"""
unsigned count[1024];

int main(void) {
    unsigned i;
    unsigned address;
    volatile unsigned x;
    for (i = 0; i < %d; i = i + 32) {
        address = i %% 1024;
        x = count[address];
    }
    return 0;
}
"""

FIGURE7_ITERATIONS = 100_000


def figure7_image(iterations: int = FIGURE7_ITERATIONS):
    return compile_c_program(FIGURE7_SOURCE % iterations)


def run_on_config(image, config: ArchitectureConfig,
                  max_instructions: int = 20_000_000) -> tuple[int, float]:
    """Execute *image* on a fresh full-platform system with *config*;
    returns (cycles, model_seconds).  The remote-roundtrip benches still
    need this network-attached path; the sweeping benches go through
    :func:`sweep_point` (the Sim box) instead."""
    system = LiquidProcessorSystem(config)
    run = system.run_image(image, max_instructions=max_instructions)
    assert run.state == "DONE", f"run ended {run.state}"
    return run.cycles, run.seconds


def sweep_point(image, config: ArchitectureConfig,
                max_instructions: int = 20_000_000):
    """Evaluate one configuration through the sweep engine (fresh
    runner, no cache); returns the :class:`repro.core.SweepPoint`."""
    from repro.core import SweepRunner

    outcome = SweepRunner().sweep([config], image,
                                  max_instructions=max_instructions)
    return outcome.points[0]


@pytest.fixture(scope="session")
def fig7_image():
    return figure7_image()


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    widths = [max(len(str(headers[i])),
                  max((len(str(row[i])) for row in rows), default=0))
              for i in range(len(headers))]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
