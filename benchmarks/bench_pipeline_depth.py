"""Ablation: "modifiable pipeline depth" (the first dimension §1 names).

Depth changes two opposing things: a deeper pipeline clocks faster (the
synthesis model's critical-path factor) but pays bubbles on taken
control transfers; a shallower pipeline clocks slower but has no
load-use interlock.  Whether 3, 5 or 7 stages is *fastest in seconds*
therefore depends on the application's instruction mix — exactly the
application-specific trade the liquid-architecture loop optimizes.
"""

import pytest

from repro.core import (
    ArchitectureConfig,
    ConfigurationSpace,
    ResultCache,
    SweepRunner,
)
from repro.toolchain.driver import compile_c_program

from .conftest import print_table, sweep_point

DEPTHS = [3, 5, 7]

KERNELS = {
    "branchy (LFSR decisions)": """
int main(void) {
    unsigned lfsr = 0xACE1;
    int count = 0;
    for (int i = 0; i < 4000; i++) {
        if (lfsr & 1) { count++; lfsr = (lfsr >> 1) ^ 0xB400; }
        else { count--; lfsr = lfsr >> 1; }
        if (count & 4) count += 2;
    }
    return count;
}
""",
    "straight-line (hash mixing)": """
int main(void) {
    unsigned a = 1, b = 2, c = 3, d = 4;
    for (int i = 0; i < 800; i++) {
        a = a * 3 + 1; b = b * 5 + 2; c = c * 7 + 3; d = d * 9 + 4;
        a = a ^ (b >> 3); b = b ^ (c >> 5); c = c ^ (d >> 7);
        d = d ^ (a >> 2);
        a = a + b; b = b + c; c = c + d; d = d + a;
    }
    return (int)((a + b + c + d) & 0x7FFFFFFF);
}
""",
    "pointer-chasing (load-use)": """
int chain[512];
int main(void) {
    for (int i = 0; i < 512; i++) chain[i] = (i * 7 + 1) % 512;
    int index = 0;
    for (int hop = 0; hop < 4000; hop++) {
        index = chain[index];      /* load feeds the next address */
    }
    return index;
}
""",
}


@pytest.fixture(scope="module")
def depth_matrix():
    """One sweep per kernel over the pipeline-depth dimension; the
    shared result cache keeps repeated fixture use free."""
    runner = SweepRunner(cache=ResultCache())
    matrix = {}
    for kernel_name, source in KERNELS.items():
        image = compile_c_program(source)
        space = ConfigurationSpace(ArchitectureConfig())
        space.add_dimension("pipeline_depth", DEPTHS)
        for point in runner.sweep(space, image).points:
            matrix[(kernel_name, point.config.pipeline_depth)] = (
                point.cycles, point.frequency_mhz, point.seconds,
                point.result_word)
    return matrix


@pytest.mark.parametrize("depth", DEPTHS)
def test_pipeline_depth_benchmark(benchmark, depth, depth_matrix):
    image = compile_c_program(KERNELS["branchy (LFSR decisions)"])
    config = ArchitectureConfig(pipeline_depth=depth)
    point = benchmark.pedantic(sweep_point, args=(image, config),
                               rounds=1, iterations=1)
    benchmark.extra_info["depth"] = depth
    benchmark.extra_info["model_cycles"] = point.cycles


def test_pipeline_depth_table(benchmark, depth_matrix):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for kernel_name in KERNELS:
        for depth in DEPTHS:
            cycles, mhz, seconds, _ = depth_matrix[(kernel_name, depth)]
            best = min(depth_matrix[(kernel_name, d)][2] for d in DEPTHS)
            marker = " <- best" if seconds == best else ""
            rows.append([kernel_name if depth == DEPTHS[0] else "",
                         f"{depth}-stage", cycles, f"{mhz:.1f} MHz",
                         f"{seconds * 1e6:.1f} us{marker}"])
    print_table("Ablation: pipeline depth (cycles vs clock trade)",
                ["Kernel", "Pipeline", "Cycles", "Clock", "Model time"],
                rows)

    # Results identical across depths for each kernel.
    for kernel_name in KERNELS:
        results = {depth_matrix[(kernel_name, d)][3] for d in DEPTHS}
        assert len(results) == 1, kernel_name

    def seconds(kernel, depth):
        return depth_matrix[(kernel, depth)][2]

    def cycles(kernel, depth):
        return depth_matrix[(kernel, depth)][0]

    # Cycle counts: deeper pipeline never wins cycles, shallower never
    # loses them (fewer hazards).
    for kernel_name in KERNELS:
        assert cycles(kernel_name, 7) >= cycles(kernel_name, 5)
        assert cycles(kernel_name, 3) <= cycles(kernel_name, 5)
    # The crossover: the straight-line kernel prefers the deep
    # pipeline's clock, the branchy kernel prefers the 5-stage —
    # no single depth is best for every application, which is the
    # reason this dimension is liquid at all.
    assert seconds("straight-line (hash mixing)", 7) < \
        seconds("straight-line (hash mixing)", 5)
    assert seconds("branchy (LFSR decisions)", 5) < \
        seconds("branchy (LFSR decisions)", 7)
